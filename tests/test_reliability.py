"""Tests for repro.reliability: faults, retries, partial failure.

Covers the three layers separately — the deterministic
:class:`FaultInjector`, the :class:`RetryPolicy` classification and
backoff, the :class:`BatchReport` envelope contract — plus the
integration seams: corrupt artifacts are quarantined instead of served,
a SIGKILLed pool worker does not cost the batch (the satellite
regression test), queue/job-store gc honors TTLs and ``--dry-run``, the
server exposes its abandoned-thread leak, and the client polls with
backoff.
"""

import json
import os
import time

import pytest

from repro.api import RunSpec, Session, SystematicStrategy
from repro.api.executor import ResultCache
from repro.reliability import (
    BatchExecutionError,
    BatchReport,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    SpecFailure,
    classify_transient,
    install_plan,
    run_with_retry,
)
from repro.store import ArtifactCorruptionWarning, ArtifactStore


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    for var in ("REPRO_RUN_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                "REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR", "REPRO_BACKEND"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
    monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
    monkeypatch.setenv("REPRO_JOBS_DIR", str(tmp_path / "jobs"))


def _micro_spec(**changes) -> RunSpec:
    spec = RunSpec(
        benchmark="micro.syn",
        strategy=SystematicStrategy(unit_size=25, n_init=30, max_rounds=1,
                                    detailed_warming=50),
        epsilon=0.5,
    )
    return spec.with_(**changes) if changes else spec


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="nope", kind="raise")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="store.read", kind="nope")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="store.read", kind="raise", probability=1.5)
        with pytest.raises(ValueError, match="unknown fault-rule field"):
            FaultRule.from_dict({"site": "store.read", "kind": "raise",
                                 "tires": 3})

    def test_plan_round_trip_and_env_parsing(self, tmp_path, monkeypatch):
        plan = FaultPlan(rules=[FaultRule(site="pool.task", kind="crash")],
                         seed=3, state_dir=str(tmp_path))
        parsed = FaultPlan.from_raw(plan.to_json())
        assert parsed.to_dict() == plan.to_dict()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_raw(str(path)).to_dict() == plan.to_dict()

    def test_env_plan_activates_and_caches(self, monkeypatch):
        from repro.reliability.faults import active_injector

        assert active_injector() is None
        plan = FaultPlan(rules=[FaultRule(site="store.read", kind="raise")])
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        injector = active_injector()
        assert injector is not None
        assert active_injector() is injector  # cached on the raw string


class TestFaultInjector:
    def test_probability_draws_are_deterministic(self):
        plan = FaultPlan(rules=[FaultRule(site="store.read", kind="raise",
                                          probability=0.5, times=None)],
                         seed=11)

        def firings(injector):
            out = []
            for i in range(40):
                try:
                    injector.fire("store.read", f"key{i}")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first = firings(FaultInjector(plan))
        second = firings(FaultInjector(plan))
        assert first == second
        assert any(first) and not all(first)
        other = firings(FaultInjector(FaultPlan(rules=plan.rules, seed=12)))
        assert other != first  # the seed matters

    def test_match_and_times_budget(self):
        plan = FaultPlan(rules=[FaultRule(site="store.read", kind="raise",
                                          match="target", times=2)])
        injector = FaultInjector(plan)
        injector.fire("store.read", "someone-else")  # no match, no fire
        injector.fire("store.write", "target")       # wrong site
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("store.read", "a-target-key")
        injector.fire("store.read", "a-target-key")  # budget exhausted

    def test_shared_budget_spans_injectors(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(site="store.read", kind="raise",
                                          scope="shared", times=1)],
                         state_dir=str(tmp_path / "fuses"))
        with pytest.raises(InjectedFault):
            FaultInjector(plan).fire("store.read", "k")
        # A brand-new injector (a respawned worker) sees the burnt fuse.
        FaultInjector(plan).fire("store.read", "k")

    def test_oserror_kind_carries_real_errno(self):
        import errno

        plan = FaultPlan(rules=[FaultRule(site="store.write", kind="oserror",
                                          errno_name="ENOSPC")])
        with pytest.raises(OSError) as info:
            FaultInjector(plan).fire("store.write", "k")
        assert info.value.errno == errno.ENOSPC

    def test_corrupt_flips_one_byte_deterministically(self):
        plan = FaultPlan(rules=[FaultRule(site="store.write",
                                          kind="corrupt", times=None)])
        data = b'{"value": 123}'
        first = FaultInjector(plan).corrupt("store.write", "k", data)
        second = FaultInjector(plan).corrupt("store.write", "k", data)
        assert first == second
        assert first != data
        assert sum(a != b for a, b in zip(first, data)) == 1
        # XOR 0xFF of an ASCII byte is never valid UTF-8.
        with pytest.raises(UnicodeDecodeError):
            first.decode()

    def test_install_plan_overrides_and_clears(self):
        from repro.reliability.faults import active_injector, clear_plan

        injector = install_plan({"rules": [{"site": "store.read",
                                            "kind": "raise"}]})
        assert active_injector() is injector
        clear_plan()
        assert active_injector() is None


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_classification(self):
        assert classify_transient(OSError(5, "io")) is True
        assert classify_transient(TimeoutError()) is True
        assert classify_transient(ConnectionError()) is True
        assert classify_transient(InjectedFault("x")) is True
        assert classify_transient(InjectedFault("x", transient=False)) is False
        assert classify_transient(ValueError("bad")) is False
        assert classify_transient(KeyError("bad")) is False
        assert classify_transient(MemoryError()) is False

    def test_should_retry_respects_budget_and_class(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(OSError(5, "io"), 1)
        assert policy.should_retry(OSError(5, "io"), 2)
        assert not policy.should_retry(OSError(5, "io"), 3)
        assert not policy.should_retry(ValueError(), 1)

    def test_backoff_grows_capped_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, seed=1)
        d1, d2 = policy.delay("k", 1), policy.delay("k", 2)
        assert 0.1 <= d1 < 0.2  # base * jitter[1,2)
        assert d1 < d2
        assert policy.delay("k", 10) == 0.5  # capped
        assert policy.delay("k", 1) == d1  # deterministic
        assert policy.delay("other", 1) != d1  # decorrelated by key

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "5")
        assert RetryPolicy.from_env().max_attempts == 5
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "bogus")
        with pytest.raises(ValueError, match="REPRO_MAX_ATTEMPTS"):
            RetryPolicy.from_env()

    def test_run_with_retry_counts_attempts(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(5, "flaky disk")
            return "done"

        value, attempts = run_with_retry(
            flaky, "k", RetryPolicy(max_attempts=3, base_delay=0),
            sleep=lambda s: None)
        assert (value, attempts) == ("done", 3)

        with pytest.raises(ValueError):
            run_with_retry(lambda: (_ for _ in ()).throw(ValueError("no")),
                           "k", RetryPolicy(max_attempts=3, base_delay=0),
                           sleep=lambda s: None)


# ----------------------------------------------------------------------
# BatchReport
# ----------------------------------------------------------------------
class TestBatchReport:
    def test_partial_failure_contract(self):
        good = _micro_spec()
        bad = _micro_spec(benchmark="no-such-benchmark")
        report = Session(use_cache=False).run_batch_report([good, bad])
        assert len(report) == 2 and not report.ok
        assert len(report.completed) == 1
        (failure,) = report.failures
        assert failure.spec == bad
        assert failure.error_type == "KeyError"
        assert failure.transient is False
        assert report.result_for(bad) is failure
        with pytest.raises(BatchExecutionError) as info:
            report.results
        assert len(info.value.report.completed) == 1

    def test_run_batch_raises_but_carries_report(self):
        session = Session(use_cache=False)
        with pytest.raises(BatchExecutionError) as info:
            session.run_batch([_micro_spec(),
                               _micro_spec(benchmark="no-such-benchmark")])
        assert len(info.value.report.completed) == 1
        assert "no-such-benchmark" in str(info.value)

    def test_round_trip(self):
        report = Session(use_cache=False).run_batch_report(
            [_micro_spec(), _micro_spec(benchmark="no-such-benchmark")])
        clone = BatchReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.failures[0].row() == report.failures[0].row()

    def test_failed_specs_are_not_cached(self):
        session = Session()
        report = session.run_batch_report(
            [_micro_spec(benchmark="no-such-benchmark")])
        assert not report.ok
        assert session.executor.cache.get(
            _micro_spec(benchmark="no-such-benchmark")) is None


# ----------------------------------------------------------------------
# Store integration: corruption is quarantined, never served
# ----------------------------------------------------------------------
class TestStoreFaults:
    def test_corrupt_framed_write_quarantined_on_read(self, tmp_path):
        install_plan({"rules": [{"site": "store.write", "kind": "corrupt"}]})
        store = ArtifactStore()
        path = store.path("checkpoint", "blob.ckpt")
        store.write_path(path, b"payload-bytes", checksum=True)
        with pytest.warns(ArtifactCorruptionWarning):
            assert store.read_path(path) is None
        assert not path.exists()  # moved into quarantine/
        assert list(store.quarantine_dir.iterdir())

    def test_corrupt_read_of_framed_blob_never_served(self):
        install_plan({"rules": [{"site": "store.read", "kind": "corrupt",
                                 "times": None}]})
        store = ArtifactStore()
        path = store.path("checkpoint", "blob.ckpt")
        store.write_path(path, b"payload-bytes", checksum=True)
        with pytest.warns(ArtifactCorruptionWarning):
            assert store.read_path(path) is None

    def test_corrupt_result_cache_entry_is_a_miss(self):
        install_plan({"rules": [{"site": "store.write", "kind": "corrupt",
                                 "match": "--v"}]})
        spec = _micro_spec()
        session = Session()
        result = session.run(spec)  # computed, cached corruptly
        install_plan(None)
        cache = ResultCache()
        assert cache.get(spec) is None  # corrupt entry: miss, not garbage
        rerun = Session().run(spec)
        assert rerun.estimates_dict() == result.estimates_dict()

    def test_oserror_on_cache_read_degrades_to_miss(self):
        spec = _micro_spec()
        golden = Session(use_cache=False).run(spec)
        install_plan({"rules": [{"site": "store.read", "kind": "oserror",
                                 "times": None}]})
        result = Session().run(spec)  # every cache read EIOs: recompute
        assert result.estimates_dict() == golden.estimates_dict()


# ----------------------------------------------------------------------
# Backends under faults
# ----------------------------------------------------------------------
class TestSerialBackendRetry:
    def test_transient_error_is_retried(self, monkeypatch):
        import repro.api.executor as executor_module
        from repro.backends.local import SerialBackend

        spec = _micro_spec()
        real = executor_module.execute_spec
        calls = []

        def flaky(s):
            calls.append(1)
            if len(calls) == 1:
                raise OSError(5, "transient I/O")
            return real(s)

        monkeypatch.setattr(executor_module, "execute_spec", flaky)
        backend = SerialBackend(retry=RetryPolicy(max_attempts=3,
                                                  base_delay=0))
        (outcome,) = backend.run_specs([spec])
        assert not isinstance(outcome, SpecFailure)
        assert len(calls) == 2

    def test_permanent_error_fails_once(self, monkeypatch):
        import repro.api.executor as executor_module
        from repro.backends.local import SerialBackend

        calls = []

        def broken(s):
            calls.append(1)
            raise ValueError("deterministically bad")

        monkeypatch.setattr(executor_module, "execute_spec", broken)
        backend = SerialBackend(retry=RetryPolicy(max_attempts=3,
                                                  base_delay=0))
        (outcome,) = backend.run_specs([_micro_spec()])
        assert isinstance(outcome, SpecFailure)
        assert outcome.error_type == "ValueError"
        assert len(calls) == 1  # permanent errors are not retried


class TestLocalPoolSurvivesWorkerDeath:
    def test_sigkilled_worker_does_not_cost_the_batch(self, tmp_path,
                                                      monkeypatch):
        """Satellite regression: one SIGKILLed pool worker mid-batch.

        The ``kill`` fault SIGKILLs the first pool worker to pick up a
        task (shared fuse: exactly one death across all processes).  The
        batch must still complete every spec — the broken pool is
        respawned and only unfinished specs are resubmitted.
        """
        from repro.backends.local import LocalPoolBackend

        plan = FaultPlan(
            rules=[FaultRule(site="pool.task", kind="kill",
                             scope="shared", times=1)],
            state_dir=str(tmp_path / "fuses"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())

        specs = [_micro_spec(seed=seed) for seed in range(4)]
        backend = LocalPoolBackend(
            max_workers=2, retry=RetryPolicy(max_attempts=3, base_delay=0))
        outcomes = backend.run_specs(specs)
        assert len(outcomes) == len(specs)
        assert not any(isinstance(o, SpecFailure) for o in outcomes), [
            o.row() for o in outcomes if isinstance(o, SpecFailure)]

        monkeypatch.delenv("REPRO_FAULT_PLAN")
        golden = Session(use_cache=False).run_batch(specs)
        assert [o.estimates_dict() for o in outcomes] \
            == [g.estimates_dict() for g in golden]

    def test_spec_that_always_kills_exhausts_budget(self, tmp_path,
                                                    monkeypatch):
        from repro.backends.local import LocalPoolBackend

        plan = FaultPlan(rules=[FaultRule(site="pool.task", kind="crash",
                                          times=None)])
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        specs = [_micro_spec(seed=seed) for seed in range(2)]
        backend = LocalPoolBackend(
            max_workers=2, retry=RetryPolicy(max_attempts=2, base_delay=0))
        outcomes = backend.run_specs(specs)
        assert all(isinstance(o, SpecFailure) for o in outcomes)
        assert all(o.error_type == "BrokenProcessPool" for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert all(o.transient for o in outcomes)


class TestQueueWorkerRetry:
    def test_transient_worker_fault_retries_in_place(self, monkeypatch):
        """A transient in-worker fault requeues the job and succeeds."""
        from repro.backends import FileWorkQueue, run_worker

        install_plan({"rules": [{"site": "worker.execute", "kind": "raise",
                                 "times": 1}]})
        queue = FileWorkQueue()
        spec = _micro_spec()
        name = queue.submit(spec, use_cache=False)
        run_worker(poll=0.01, max_idle=0.5,
                   retry=RetryPolicy(max_attempts=3, base_delay=0))
        state, record = queue.result(name)
        assert state == "done", record

    def test_exhausted_transient_budget_fails_with_detail(self):
        from repro.backends import FileWorkQueue, run_worker

        install_plan({"rules": [{"site": "worker.execute", "kind": "raise",
                                 "times": None}]})
        queue = FileWorkQueue()
        name = queue.submit(_micro_spec(), use_cache=False)
        run_worker(poll=0.01, max_idle=0.5,
                   retry=RetryPolicy(max_attempts=2, base_delay=0))
        state, record = queue.result(name)
        assert state == "failed"
        assert record["error_type"] == "InjectedFault"
        assert record["attempts"] == 2
        assert record["transient"] is True


# ----------------------------------------------------------------------
# Queue and job-store gc
# ----------------------------------------------------------------------
class TestQueueGC:
    def test_ttl_prunes_only_terminal_states(self):
        from repro.backends import FileWorkQueue

        queue = FileWorkQueue()
        queue.ensure_dirs()
        old = time.time() - 10 * 86400
        for state in ("pending", "claimed", "done", "failed"):
            path = queue._path(state, f"job-{state}")
            path.write_text("{}")
            os.utime(path, (old, old))
        (queue._dir("done") / "litter.tmp").write_text("")

        dry = queue.gc(max_age_days=7, dry_run=True)
        names = {p.name for p in dry}
        assert names == {"job-done.json", "job-failed.json", "litter.tmp"}
        assert all(p.exists() for p in dry)  # dry run deleted nothing

        removed = queue.gc(max_age_days=7)
        assert {p.name for p in removed} == names
        assert queue._path("pending", "job-pending").exists()
        assert queue._path("claimed", "job-claimed").exists()
        assert not queue._path("done", "job-done").exists()

    def test_store_gc_cli_sweeps_queue_records(self, capsys):
        from repro.backends import FileWorkQueue
        from repro.cli import main

        queue = FileWorkQueue()
        queue.ensure_dirs()
        path = queue._path("done", "ancient")
        path.write_text("{}")
        old = time.time() - 10 * 86400
        os.utime(path, (old, old))
        assert main(["store", "gc", "--max-age-days", "7"]) == 0
        out = capsys.readouterr().out
        assert "queue record(s)" in out
        assert not path.exists()

    def test_jobs_gc_dry_run(self, capsys):
        from repro.cli import main
        from repro.server import JobStore
        from repro.server.store import JobRecord

        store = JobStore()
        record = JobRecord(id="run-x", kind="run", payload={},
                           status="done")
        record.submitted_at = time.time() - 10 * 86400
        store.save(record)
        assert main(["jobs", "gc", "--max-age-days", "7",
                     "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert store.load("run-x") is not None
        assert main(["jobs", "gc", "--max-age-days", "7"]) == 0
        assert store.load("run-x") is None


# ----------------------------------------------------------------------
# Server: partial failure surfaced, abandoned threads counted
# ----------------------------------------------------------------------
class TestServerReliability:
    def test_job_timeout_counts_abandoned_threads(self):
        from repro.server import create_app
        from repro.server.client import ReproClient, ServerError

        install_plan({"rules": [{"site": "server.job", "kind": "delay",
                                 "delay": 0.6}]})
        app = create_app(job_timeout=0.1, workers=1)
        client = ReproClient(app=app)
        try:
            job = client.submit_run(_micro_spec())
            with pytest.raises(ServerError, match="timeout"):
                client.wait(job["id"], timeout=30.0)
            health = client.health()
            assert health["abandoned_total"] == 1
            assert health["abandoned_jobs"] >= 0
            deadline = time.time() + 10
            while time.time() < deadline:
                if client.health()["abandoned_jobs"] == 0:
                    break  # the abandoned computation finished; pruned
                time.sleep(0.05)
            assert client.health()["abandoned_jobs"] == 0
            assert client.health()["abandoned_total"] == 1
        finally:
            app.queue.shutdown()

    def test_failed_batch_job_carries_failure_envelopes(self, monkeypatch):
        import repro.server.jobs as jobs_module
        from repro.server import create_app
        from repro.server.client import ReproClient, ServerError

        spec = _micro_spec()

        def failing_run(session, run_spec):
            report = BatchReport(entries=[SpecFailure(
                spec=run_spec, error="simulated spec failure",
                error_type="OSError", attempts=3, transient=True)])
            raise BatchExecutionError(report)

        monkeypatch.setattr(jobs_module, "execute_run", failing_run)
        app = create_app(workers=1)
        client = ReproClient(app=app)
        try:
            job = client.submit_run(spec)
            with pytest.raises(ServerError):
                client.wait(job["id"], timeout=30.0)
            record = client.job(job["id"])
            assert record["status"] == "failed"
            (envelope,) = record["failures"]
            assert envelope["error_type"] == "OSError"
            assert envelope["attempts"] == 3
            assert envelope["spec"] == spec.to_dict()
        finally:
            app.queue.shutdown()

    def test_client_wait_backs_off_exponentially(self, monkeypatch):
        from repro.server import client as client_module

        polls = []

        class FakeClient(client_module.ReproClient):
            def job(self, job_id):
                return {"status": "running" if len(sleeps) < 6
                        else "done"}

        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep",
                            lambda s: sleeps.append(s))
        client = FakeClient(app=object(), poll_interval=0.05, poll_max=0.4)
        record = client.wait("jid", timeout=60.0)
        assert record["status"] == "done"
        assert sleeps[0] == pytest.approx(0.05)
        assert sleeps == sorted(sleeps)  # non-decreasing
        assert max(sleeps) <= 0.4 + 1e-9
        assert sleeps[3] > sleeps[0]
