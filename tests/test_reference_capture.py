"""Tests for checkpoint capture during the reference pass.

The tentpole dedup contract: with ``capture_units`` set, ONE warm pass
over the instruction stream populates both the reference-trace and the
checkpoint namespaces of the artifact store — asserted by
instruction-count accounting — and the captured set is equivalent to a
functionally built one (bit-identical downstream estimates).  The
reference trace itself is bit-identical with capture on or off.
"""

import numpy as np
import pytest

from repro.api import RunSpec, SystematicStrategy
from repro.api.executor import execute_spec
from repro.checkpoint import CheckpointStore
from repro.harness.reference import run_reference
from repro.store import (
    instructions_by_kind,
    pass_events,
    reset_pass_log,
)

UNIT = 25


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    for var in ("REPRO_RUN_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                "REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))


@pytest.fixture(autouse=True)
def clean_pass_log():
    reset_pass_log()
    yield
    reset_pass_log()


def test_one_pass_populates_both_namespaces(micro, machine_8way):
    store = CheckpointStore()
    assert store.get(micro.program, machine_8way, UNIT) is None

    ref = run_reference(micro.program, machine_8way, capture_units=UNIT)

    # Both artifacts exist after the single pass ...
    captured = store.get(micro.program, machine_8way, UNIT)
    assert captured is not None
    cached = run_reference(micro.program, machine_8way, capture_units=UNIT)
    assert cached.cycles == ref.cycles

    # ... and the ledger shows exactly one full-stream pass: the
    # reference simulation.  No separate functional build ever ran.
    kinds = [event.kind for event in pass_events()]
    assert kinds == ["reference"]
    assert instructions_by_kind()["reference"] == ref.instructions
    assert captured.benchmark_length == ref.instructions


def test_captured_set_matches_functional_build(micro, machine_8way, tmp_path):
    run_reference(micro.program, machine_8way, capture_units=UNIT)
    captured = CheckpointStore().get(micro.program, machine_8way, UNIT)

    built_store = CheckpointStore(directory=tmp_path / "functional")
    built = built_store.get_or_build(micro.program, machine_8way, UNIT)

    # Same grid, same metadata.
    assert captured.unit_size == built.unit_size
    assert captured.stride == built.stride
    assert captured.benchmark_length == built.benchmark_length
    assert [s.position for s in captured.snapshots] \
        == [s.position for s in built.snapshots]

    # Same downstream estimates: a checkpointed run restoring from the
    # captured set is bit-identical to one restoring from the built set
    # (which existing tests pin against the un-checkpointed run).
    spec = RunSpec(
        benchmark="micro.syn",
        strategy=SystematicStrategy(unit_size=UNIT, n_init=40, max_rounds=1,
                                    detailed_warming=50),
        checkpoints="auto",
    )
    length = captured.benchmark_length
    from_captured = spec.strategy.run(
        micro.program, machine_8way, length, checkpoints=captured)
    from_built = spec.strategy.run(
        micro.program, machine_8way, length, checkpoints=built)
    for a, b in zip(from_captured.runs, from_built.runs):
        assert a.units == b.units
        assert a.instructions_measured == b.instructions_measured
        assert a.instructions_restored == b.instructions_restored
    assert sum(run.checkpoint_restores
               for run in from_captured.runs) > 0


def test_executor_reuses_captured_set_without_build_pass(micro, machine_8way):
    """After a capturing reference pass, auto specs never build again."""
    run_reference(micro.program, machine_8way, capture_units=UNIT)
    reset_pass_log()

    result = execute_spec(RunSpec(
        benchmark="micro.syn",
        strategy=SystematicStrategy(unit_size=UNIT, n_init=40, max_rounds=1,
                                    detailed_warming=50),
        checkpoints="auto",
    ))
    assert result.checkpoint_restores > 0
    kinds = [event.kind for event in pass_events()]
    assert "checkpoint_build" not in kinds
    assert "measure_length" not in kinds  # length came from the set


def test_trace_bit_identical_with_capture_on_and_off(micro, machine_8way,
                                                     micro_reference,
                                                     tmp_path):
    """Splitting chunks at snapshot boundaries must not perturb the trace."""
    capturing = run_reference(
        micro.program, machine_8way, chunk_size=25, use_cache=False,
        capture_units=UNIT,
        checkpoint_store=CheckpointStore(directory=tmp_path / "capture"))
    assert capturing.instructions == micro_reference.instructions
    assert capturing.cycles == micro_reference.cycles
    assert capturing.energy == micro_reference.energy
    assert np.array_equal(capturing.chunk_cycles,
                          micro_reference.chunk_cycles)
    assert np.array_equal(capturing.chunk_energy,
                          micro_reference.chunk_energy)


def test_capture_skipped_when_set_exists(micro, machine_8way):
    store = CheckpointStore()
    built = store.get_or_build(micro.program, machine_8way, UNIT)
    reset_pass_log()
    run_reference(micro.program, machine_8way, capture_units=UNIT)
    kinds = [event.kind for event in pass_events()]
    assert kinds == ["reference"]  # no rebuild, no overwrite
    again = store.get(micro.program, machine_8way, UNIT)
    assert [s.position for s in again.snapshots] \
        == [s.position for s in built.snapshots]


def test_capture_respects_disabled_store(micro, machine_8way):
    disabled = CheckpointStore(enabled=False)
    ref = run_reference(micro.program, machine_8way, use_cache=False,
                        capture_units=UNIT, checkpoint_store=disabled)
    assert ref.instructions > 0
    assert CheckpointStore().get(micro.program, machine_8way, UNIT) is None
