"""Tests for repro.store: the content-addressed artifact store.

Covers the three disciplines every artifact gets — atomic writes,
checksum-verified reads with quarantine, version-based gc — plus the
fingerprint scheme, the pass-accounting ledger, and the concurrent-put
contract (one winner, never a torn read).
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

import repro.api  # noqa: F401 — registers the result artifact kind
from repro.api.executor import CACHE_VERSION
from repro.store import (
    NAMESPACES,
    ArtifactCorruptionWarning,
    ArtifactStore,
    default_artifact_dir,
    fingerprint,
    instructions_by_kind,
    pass_events,
    record_pass,
    registered_kinds,
    reset_pass_log,
)

#: Legacy env vars that would redirect namespaces away from the root.
_ENV_VARS = ("REPRO_ARTIFACT_DIR", "REPRO_RUN_CACHE_DIR",
             "REPRO_CHECKPOINT_DIR", "REPRO_REF_CACHE_DIR",
             "REPRO_CACHE_DIR")


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in _ENV_VARS:
        monkeypatch.delenv(var, raising=False)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "artifacts")


class TestLayout:
    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "custom"))
        assert default_artifact_dir() == tmp_path / "custom"

    def test_namespace_dir_default(self, store):
        assert store.namespace_dir("result") == store.root / "result"

    def test_namespace_dir_env_chain(self, store, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "old"))
        assert store.namespace_dir("reftrace") == tmp_path / "old"
        monkeypatch.setenv("REPRO_REF_CACHE_DIR", str(tmp_path / "new"))
        assert store.namespace_dir("reftrace") == tmp_path / "new"

    def test_explicit_override_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "env"))
        store = ArtifactStore(root=tmp_path,
                              overrides={"result": tmp_path / "explicit"})
        assert store.namespace_dir("result") == tmp_path / "explicit"

    def test_unknown_namespace_rejected(self, store):
        with pytest.raises(ValueError, match="unknown namespace"):
            store.namespace_dir("nope")

    def test_registered_kinds_cover_all_namespaces(self):
        # Importing repro.api pulls in every adapter, so each namespace
        # has at least one registered kind (gc can classify its files).
        import repro.harness.reference  # noqa: F401

        kinds = registered_kinds()
        assert set(kinds) == set(NAMESPACES)


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = fingerprint({"x": 1, "y": [2, 3]})
        b = fingerprint({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 16
        assert int(a, 16) >= 0

    def test_content_sensitive(self):
        assert fingerprint({"x": 1}) != fingerprint({"x": 2})


class TestBlobIO:
    def test_checksummed_roundtrip(self, store):
        payload = b"\x00\x01binary payload\xff" * 100
        path = store.put("checkpoint", "a--v1.ckpt", payload)
        assert path.read_bytes().startswith(b"REPROART1\n")
        assert store.get("checkpoint", "a--v1.ckpt") == payload

    def test_raw_roundtrip_stays_parseable(self, store):
        payload = json.dumps({"k": 1}).encode()
        path = store.put("result", "r--v1.json", payload, checksum=False)
        assert json.loads(path.read_text()) == {"k": 1}
        assert store.get("result", "r--v1.json") == payload

    def test_miss_returns_none(self, store):
        assert store.get("result", "missing.json") is None

    def test_write_leaves_no_tmp_litter(self, store):
        store.put("bbv", "p--v1.bbvp", b"data")
        assert not list(store.namespace_dir("bbv").glob("*.tmp"))

    def test_disabled_store_never_touches_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "off", enabled=False)
        store.put("result", "a.json", b"data")
        assert store.get("result", "a.json") is None
        assert not (tmp_path / "off").exists()


class TestCorruption:
    def _corrupt(self, path: Path) -> None:
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_blob_quarantined(self, store):
        path = store.put("checkpoint", "c--v1.ckpt", b"payload" * 50)
        self._corrupt(path)
        with pytest.warns(ArtifactCorruptionWarning):
            assert store.get("checkpoint", "c--v1.ckpt") is None
        assert not path.exists()
        quarantined = list(store.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith("c--v1.ckpt")

    def test_truncated_blob_quarantined(self, store):
        path = store.put("checkpoint", "t--v1.ckpt", b"payload" * 50)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.warns(ArtifactCorruptionWarning):
            assert store.get("checkpoint", "t--v1.ckpt") is None
        assert not path.exists()

    def test_headerless_file_returned_raw(self, store):
        # Legacy artifacts predate the frame: returned as-is, never
        # quarantined (the adapter's parser decides what a miss is).
        path = store.path("reftrace", "legacy.npz")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a framed artifact")
        assert store.get("reftrace", "legacy.npz") == b"not a framed artifact"
        assert path.exists()

    def test_get_or_create_rebuilds_after_corruption(self, store):
        calls = []

        def builder() -> bytes:
            calls.append(1)
            return b"rebuilt payload"

        assert store.get_or_create("bbv", "b--v1.bbvp", builder) \
            == b"rebuilt payload"
        assert store.get_or_create("bbv", "b--v1.bbvp", builder) \
            == b"rebuilt payload"
        assert len(calls) == 1  # second call memoized
        self._corrupt(store.path("bbv", "b--v1.bbvp"))
        with pytest.warns(ArtifactCorruptionWarning):
            assert store.get_or_create("bbv", "b--v1.bbvp", builder) \
                == b"rebuilt payload"
        assert len(calls) == 2  # corruption forced a rebuild
        assert store.get("bbv", "b--v1.bbvp") == b"rebuilt payload"

    def test_get_or_create_survives_unwritable_store(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        store = ArtifactStore(root=tmp_path,
                              overrides={"result": target / "sub"})
        with pytest.warns(RuntimeWarning, match="artifact store write"):
            data = store.get_or_create("result", "a.json", lambda: b"built")
        assert data == b"built"


def _hammer_put(root: str, name: str, seed: int) -> None:
    """Write one distinct (but internally consistent) payload repeatedly."""
    store = ArtifactStore(root=root)
    payload = bytes([seed]) * 65536
    for _ in range(40):
        store.put("checkpoint", name, payload)


class TestConcurrentPut:
    def test_concurrent_same_key_one_winner_never_torn(self, store):
        """Two processes racing on one key: reads always verify.

        Every read during the race must return one writer's complete
        payload — a torn read would fail the checksum and quarantine,
        which the test would observe as a warning or a missing file.
        """
        name = f"race--v{CACHE_VERSION}.ckpt"
        ctx = multiprocessing.get_context("fork")
        writers = [ctx.Process(target=_hammer_put,
                               args=(str(store.root), name, seed))
                   for seed in (1, 2)]
        for proc in writers:
            proc.start()
        observed = set()
        deadline = time.time() + 20
        try:
            while any(p.is_alive() for p in writers):
                data = store.get("checkpoint", name)
                if data is not None:
                    assert len(data) == 65536
                    assert data in (b"\x01" * 65536, b"\x02" * 65536)
                    observed.add(data[0])
                assert time.time() < deadline, "writers wedged"
        finally:
            for proc in writers:
                proc.join(timeout=30)
        assert all(p.exitcode == 0 for p in writers)
        assert observed  # the race was actually observed mid-flight
        final = store.get("checkpoint", name)
        assert final in (b"\x01" * 65536, b"\x02" * 65536)
        assert not store.quarantine_dir.exists()  # no torn read ever seen


class TestStatsAndGc:
    def test_stats_counts_entries_and_quarantine(self, store):
        store.put("result", f"a--v{CACHE_VERSION}.json", b"{}",
                  checksum=False)
        store.put("result", "b--v0.json", b"{}", checksum=False)
        path = store.put("checkpoint", "c--v1.ckpt", b"payload")
        path.write_bytes(b"REPROART1\n" + b"0" * 64 + b"\nbad")
        with pytest.warns(ArtifactCorruptionWarning):
            store.get("checkpoint", "c--v1.ckpt")
        stats = store.stats()
        assert stats["root"] == str(store.root)
        assert stats["namespaces"]["result"]["files"] == 2
        assert stats["namespaces"]["result"]["entries"] == 1  # current only
        assert stats["quarantined"] == 1
        assert stats["size_bytes"] > 0

    def test_gc_removes_stale_versions_and_tmp_only(self, store):
        current = store.put("result", f"a--v{CACHE_VERSION}.json", b"{}",
                            checksum=False)
        stale = store.put("result", "b--v0.json", b"{}", checksum=False)
        tmp = store.namespace_dir("result") / "orphan.tmp"
        tmp.write_bytes(b"partial")
        unknown = store.namespace_dir("result") / "NOTES.bin"
        unknown.write_bytes(b"not ours")

        would = store.gc(namespaces=("result",), dry_run=True)
        assert sorted(p.name for p in would) == ["b--v0.json", "orphan.tmp"]
        assert stale.exists() and tmp.exists()  # dry run deleted nothing

        removed = store.gc(namespaces=("result",))
        assert sorted(p.name for p in removed) == ["b--v0.json", "orphan.tmp"]
        assert current.exists()
        assert unknown.exists()  # unclassified files are never touched
        assert not stale.exists() and not tmp.exists()

    def test_gc_remove_all_and_age(self, store):
        current = store.put("result", f"a--v{CACHE_VERSION}.json", b"{}",
                            checksum=False)
        old = store.put("result", f"old--v{CACHE_VERSION}.json", b"{}",
                        checksum=False)
        os.utime(old, (time.time() - 10 * 86400,) * 2)

        removed = store.gc(namespaces=("result",), max_age_days=5)
        assert [p.name for p in removed] == [old.name]
        assert current.exists()

        assert store.gc(namespaces=("result",), remove_all=True)
        assert not current.exists()

    def test_gc_sweeps_quarantine_with_remove_all(self, store):
        path = store.put("checkpoint", "c--v1.ckpt", b"payload")
        path.write_bytes(b"REPROART1\n" + b"0" * 64 + b"\nbad")
        with pytest.warns(ArtifactCorruptionWarning):
            store.get("checkpoint", "c--v1.ckpt")
        assert store.stats()["quarantined"] == 1
        store.gc(remove_all=True)
        assert store.stats()["quarantined"] == 0


class TestAccounting:
    def test_ledger_records_and_resets(self):
        reset_pass_log()
        try:
            record_pass("reference", "micro.syn", 1000)
            record_pass("checkpoint_build", "micro.syn", 1000)
            record_pass("reference", "gzip.syn", 500)
            events = pass_events()
            assert [e.kind for e in events] == [
                "reference", "checkpoint_build", "reference"]
            assert events[0].to_dict() == {
                "kind": "reference", "benchmark": "micro.syn",
                "instructions": 1000}
            totals = instructions_by_kind()
            assert totals["reference"] == 1500
            assert totals["checkpoint_build"] == 1000
        finally:
            reset_pass_log()
        assert pass_events() == []
