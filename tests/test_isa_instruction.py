"""Unit tests for static instructions, registers, and instruction mixes."""

import pytest

from repro.isa import (
    FP_REG_BASE,
    Instruction,
    InstructionMix,
    OpClass,
    Opcode,
    fp_reg,
    int_reg,
    op_class,
)


class TestRegisterHelpers:
    def test_int_reg_identity(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_reg_offset(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(5) == FP_REG_BASE + 5

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            fp_reg(64)


class TestOpcodeClassification:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(op_class(op), OpClass)

    def test_alu_classification(self):
        assert op_class(Opcode.ADD) == OpClass.IALU
        assert op_class(Opcode.MUL) == OpClass.IMULT
        assert op_class(Opcode.FADD) == OpClass.FPALU
        assert op_class(Opcode.FDIV) == OpClass.FPMULT

    def test_memory_classification(self):
        assert op_class(Opcode.LOAD) == OpClass.LOAD
        assert op_class(Opcode.FSTORE) == OpClass.STORE

    def test_branch_classification(self):
        for op in (Opcode.BEQ, Opcode.JUMP, Opcode.JAL, Opcode.JR):
            assert op_class(op) == OpClass.BRANCH


class TestInstruction:
    def test_alu_properties(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert inst.opclass == OpClass.IALU
        assert not inst.is_branch
        assert not inst.is_mem
        assert inst.source_regs() == (2, 3)

    def test_load_properties(self):
        inst = Instruction(Opcode.LOAD, rd=1, rs1=2, imm=8)
        assert inst.is_load and not inst.is_store and inst.is_mem
        assert inst.source_regs() == (2,)

    def test_store_properties(self):
        inst = Instruction(Opcode.STORE, rs1=2, rs2=3, imm=0)
        assert inst.is_store and not inst.is_load and inst.is_mem
        assert inst.source_regs() == (2, 3)

    def test_conditional_branch_properties(self):
        inst = Instruction(Opcode.BNE, rs1=1, rs2=0, target=5)
        assert inst.is_branch and inst.is_conditional

    def test_unconditional_branch_properties(self):
        inst = Instruction(Opcode.JUMP, target=3)
        assert inst.is_branch and not inst.is_conditional

    def test_instruction_is_frozen(self):
        inst = Instruction(Opcode.NOP)
        with pytest.raises(AttributeError):
            inst.op = Opcode.ADD  # type: ignore[misc]


class TestInstructionMix:
    def test_empty_mix(self):
        mix = InstructionMix()
        assert mix.total == 0
        assert mix.fraction(OpClass.IALU) == 0.0

    def test_record_and_fractions(self):
        mix = InstructionMix()
        for _ in range(3):
            mix.record(OpClass.IALU)
        mix.record(OpClass.LOAD)
        assert mix.total == 4
        assert mix.fraction(OpClass.IALU) == pytest.approx(0.75)
        assert mix.fraction(OpClass.LOAD) == pytest.approx(0.25)

    def test_as_dict_keys(self):
        mix = InstructionMix()
        mix.record(OpClass.BRANCH)
        d = mix.as_dict()
        assert set(d) == {cls.name for cls in OpClass}
        assert d["BRANCH"] == pytest.approx(1.0)
