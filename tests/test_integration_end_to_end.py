"""End-to-end integration tests across the full stack.

These exercise the complete flow a user of the library follows: build a
suite benchmark, obtain ground truth via the reference harness, estimate
CPI/EPI with the SMARTS procedure, and compare against SimPoint — all at
a very small scale so the tests stay fast.
"""

import pytest

from repro import (
    estimate_metric,
    get_benchmark,
    measure_program_length,
    recommended_warming,
    run_reference,
    run_simpoint,
    scaled_8way,
)
from repro.core.stats import CONFIDENCE_997


@pytest.fixture(scope="module")
def small_suite_benchmark():
    """A real suite benchmark at a very small scale (~30-60k instructions)."""
    return get_benchmark("gzip.syn", scale=0.05)


@pytest.fixture(scope="module")
def small_reference(small_suite_benchmark):
    return run_reference(small_suite_benchmark.program, scaled_8way(),
                         chunk_size=25, use_cache=False)


class TestEndToEnd:
    def test_reference_and_length_agree(self, small_suite_benchmark,
                                        small_reference):
        length = measure_program_length(small_suite_benchmark.program)
        assert length == small_reference.instructions

    def test_smarts_cpi_estimate_within_confidence(self, small_suite_benchmark,
                                                   small_reference):
        machine = scaled_8way()
        result = estimate_metric(
            small_suite_benchmark.program, machine, metric="cpi",
            unit_size=50, detailed_warming=recommended_warming(machine),
            n_init=150, epsilon=0.10, confidence=CONFIDENCE_997,
            max_rounds=2, benchmark_length=small_reference.instructions)
        error = abs(result.estimate.mean - small_reference.cpi) \
            / small_reference.cpi
        # The actual error should lie well within the reported confidence
        # interval (plus the ~2% warming-bias allowance the paper adds).
        assert error < result.confidence_interval + 0.02

    def test_smarts_epi_estimate(self, small_suite_benchmark, small_reference):
        machine = scaled_8way()
        result = estimate_metric(
            small_suite_benchmark.program, machine, metric="epi",
            unit_size=50, detailed_warming=recommended_warming(machine),
            n_init=150, epsilon=0.10, max_rounds=1,
            benchmark_length=small_reference.instructions)
        error = abs(result.estimate.mean - small_reference.epi) \
            / small_reference.epi
        assert error < result.confidence_interval + 0.02

    def test_smarts_measures_small_fraction(self, small_suite_benchmark,
                                            small_reference):
        machine = scaled_8way()
        result = estimate_metric(
            small_suite_benchmark.program, machine, metric="cpi",
            unit_size=50, detailed_warming=64,
            n_init=60, epsilon=0.5, max_rounds=1,
            benchmark_length=small_reference.instructions)
        measured_fraction = (result.final_run.instructions_measured
                             / small_reference.instructions)
        assert measured_fraction < 0.25
        assert result.final_run.detailed_fraction < 0.75
        assert result.final_run.instructions_fastforwarded > 0

    def test_simpoint_vs_smarts_comparison(self, small_suite_benchmark,
                                           small_reference):
        """The Figure 8 comparison at miniature scale: SMARTS should be at
        least as accurate as SimPoint on this benchmark."""
        machine = scaled_8way()
        smarts = estimate_metric(
            small_suite_benchmark.program, machine, metric="cpi",
            unit_size=50, detailed_warming=recommended_warming(machine),
            n_init=150, epsilon=0.10, max_rounds=2,
            benchmark_length=small_reference.instructions)
        simpoint = run_simpoint(small_suite_benchmark.program, machine,
                                interval_size=2500, max_clusters=6)
        smarts_error = abs(smarts.estimate.mean - small_reference.cpi) \
            / small_reference.cpi
        simpoint_error = abs(simpoint.cpi - small_reference.cpi) \
            / small_reference.cpi
        assert smarts_error <= simpoint_error + 0.05
        # And unlike SimPoint, SMARTS reports a confidence interval.
        assert smarts.confidence_interval > 0

    def test_16way_configuration_end_to_end(self, small_suite_benchmark):
        from repro import scaled_16way
        machine = scaled_16way()
        reference = run_reference(small_suite_benchmark.program, machine,
                                  chunk_size=25, use_cache=False)
        result = estimate_metric(
            small_suite_benchmark.program, machine, metric="cpi",
            unit_size=50, detailed_warming=recommended_warming(machine),
            n_init=150, epsilon=0.15, max_rounds=1,
            benchmark_length=reference.instructions)
        error = abs(result.estimate.mean - reference.cpi) / reference.cpi
        assert error < result.confidence_interval + 0.03
