"""Golden equivalence: checkpointed runs are bit-identical to serial ones.

The correctness contract of ``repro.checkpoint`` is exactness: restoring
snapshotted warm state at a sampling unit must reproduce, bit for bit,
the state the serial engine would have reached by functionally warming
its way there — for *every* sampling strategy, including the systematic
procedure's sample-size tuning round.  These tests compare full estimate
payloads (``RunResult.estimates_dict()``: per-unit cycle counts, CPI/EPI
estimates, CVs, confidence intervals, round history), not just the final
CPI.
"""

from __future__ import annotations

import pytest

from repro.api import (
    RandomStrategy,
    RunSpec,
    Session,
    StratifiedStrategy,
    SystematicStrategy,
    run_spec,
)
from repro.checkpoint import build_checkpoints
from repro.core.sampling import SystematicSamplingPlan
from repro.core.smarts import SmartsEngine


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    """Keep checkpoint and run caches out of the repository."""
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "runs"))


#: Small-but-real strategy parameterizations on the ~15k-instruction micro
#: benchmark: every strategy restores dozens of times per run.
STRATEGIES = {
    "systematic": SystematicStrategy(unit_size=25, n_init=60, max_rounds=2,
                                     detailed_warming=50),
    "random": RandomStrategy(unit_size=25, sample_size=60,
                             detailed_warming=50),
    "stratified": StratifiedStrategy(unit_size=25, sample_size=60,
                                     units_per_interval=10,
                                     detailed_warming=50),
}


@pytest.mark.parametrize("name", sorted(STRATEGIES))
@pytest.mark.parametrize("metric", ["cpi", "epi"])
def test_checkpointed_run_bit_identical(name, metric):
    strategy = STRATEGIES[name]
    base = RunSpec(benchmark="micro.syn", strategy=strategy, metric=metric,
                   seed=3)
    serial = run_spec(base.with_(checkpoints="off"))
    restored = run_spec(base.with_(checkpoints="auto"))

    # The full estimate payload — spec, estimates, CIs, per-round and
    # per-unit measurements — matches exactly.
    assert restored.estimates_dict() == serial.estimates_dict()

    # ...and the checkpointed run actually checkpointed: it restored at
    # sampling units and fast-forwarded strictly fewer instructions.
    assert restored.checkpoint_restores > 0
    assert restored.instructions_restored > 0
    assert (restored.instructions_fastforwarded
            < serial.instructions_fastforwarded)
    # Work conservation: restore skips exactly what it no longer warms.
    assert (restored.instructions_fastforwarded
            + restored.instructions_restored
            == serial.instructions_fastforwarded
            + serial.instructions_restored)


def test_systematic_tuning_round_preserved():
    """The 2-round procedure tunes to the same n with checkpoints on."""
    spec = RunSpec(benchmark="micro.syn",
                   strategy=STRATEGIES["systematic"], epsilon=0.01)
    serial = run_spec(spec.with_(checkpoints="off"))
    restored = run_spec(spec.with_(checkpoints="auto"))
    assert serial.rounds == restored.rounds
    assert serial.tuned_sample_sizes == restored.tuned_sample_sizes
    assert serial.round_estimates == restored.round_estimates


def test_engine_level_equivalence(micro, machine_8way):
    """Direct engine use: same plan, with and without a checkpoint set."""
    program = micro.program
    length = 15_000
    # W must stay below the inter-unit gap (k*U = 300 here) or the run
    # degenerates to continuous detailed simulation with nothing to skip.
    plan = SystematicSamplingPlan.for_sample_size(
        benchmark_length=length, unit_size=25, target_sample_size=50,
        detailed_warming=50)
    engine = SmartsEngine(machine=machine_8way, measure_energy=True)
    serial = engine.run(program, plan, length)
    ckpt = build_checkpoints(program, machine_8way, unit_size=25)
    restored = engine.run(program, plan, length, checkpoints=ckpt)
    assert restored.units == serial.units
    assert restored.checkpoint_restores > 0


def test_checkpoints_shared_across_strategies(micro, machine_8way):
    """One set (one build pass) serves every strategy of the same U."""
    ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
    length = ckpt.benchmark_length
    for name, strategy in STRATEGIES.items():
        serial = strategy.run(micro.program, machine_8way, length)
        restored = strategy.run(micro.program, machine_8way, length,
                                checkpoints=ckpt)
        for serial_run, restored_run in zip(serial.runs, restored.runs):
            assert restored_run.units == serial_run.units, name
        # The systematic procedure's tuned round may run back-to-back
        # units (k=1, nothing to skip); the *pass as a whole* restores.
        assert sum(run.checkpoint_restores for run in restored.runs) > 0, name


def test_no_functional_warming_never_checkpointed():
    """Snapshots hold warmed state; no-warming runs must not see it."""
    strategy = SystematicStrategy(unit_size=25, n_init=40, max_rounds=1,
                                  detailed_warming=50,
                                  functional_warming=False)
    spec = RunSpec(benchmark="micro.syn", strategy=strategy)
    serial = run_spec(spec.with_(checkpoints="off"))
    auto = run_spec(spec.with_(checkpoints="auto"))
    assert auto.checkpoint_restores == 0
    assert auto.estimates_dict() == serial.estimates_dict()


def test_warming_mirrors_detailed_btb_recency():
    """The state-path-independence invariant the subsystem rests on.

    ``resolve`` consults the BTB (an MRU-moving lookup) for every
    predicted-taken branch; for a predicted-taken branch that is
    actually NOT taken, no update follows to mask the recency change.
    ``warm`` must mirror that lookup, or a functionally-warmed BTB
    diverges from a detailed-simulated one as soon as the recency
    difference decides an eviction.  This constructs that exact case:
    the repository's workloads happen not to exercise it, so without
    this test the mirror in ``BranchUnit.warm`` would be unverified.
    """
    from repro.branch import BranchUnit
    from repro.config.machines import BranchConfig
    from repro.isa import Opcode
    from repro.isa.instruction import DynInst
    from repro.isa.opcodes import OpClass

    def branch(pc, taken, target):
        return DynInst(seq=0, pc=pc, op=Opcode.BEQ, opclass=OpClass.BRANCH,
                       rd=None, srcs=(), mem_addr=None, is_load=False,
                       is_store=False, is_branch=True, is_conditional=True,
                       taken=taken, next_pc=target if taken else pc + 1)

    config = BranchConfig(table_entries=64, history_bits=4, btb_entries=4,
                          btb_assoc=2)
    num_sets = 2
    a, b, c = 2, 2 + num_sets, 2 + 2 * num_sets  # same BTB set

    # Identical training stream; one unit warms, one resolves.
    stream = (
        # Fill the set: [a, b] with b most recent; train "taken" at a.
        [branch(a, True, 40)] * 4 + [branch(b, True, 41)]
        # Predicted-taken at a, actually NOT taken: resolve touches a's
        # recency via the BTB lookup, an un-mirrored warm would not.
        + [branch(a, False, 40)]
        # Third PC forces an eviction decided by that recency order.
        + [branch(c, True, 42)]
    )
    warmed = BranchUnit(config)
    detailed = BranchUnit(config)
    for dyn in stream:
        warmed.warm(dyn)
        detailed.resolve(dyn)
    assert warmed.btb.warm_state() == detailed.btb.warm_state()
    # And the divergent victim choice this protects against: 'a' must
    # survive (it was made most-recent by the lookup), 'b' be evicted.
    assert warmed.btb.lookup(a) == 40
    assert warmed.btb.lookup(b) is None


def test_parallel_batch_matches_serial_with_checkpoints():
    """Cache-off parallel execution with checkpoints stays bit-identical."""
    specs = [RunSpec(benchmark="micro.syn", strategy=STRATEGIES[name],
                     checkpoints="auto", seed=1)
             for name in sorted(STRATEGIES)]
    session = Session(use_cache=False)
    serial = session.run_batch(specs)
    parallel = session.run_batch(specs, max_workers=2)
    for left, right in zip(serial, parallel):
        assert left.estimates_dict() == right.estimates_dict()
