"""Tests for the SimPoint baseline: BBV profiling, k-means, estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simpoint import (
    choose_clustering,
    kmeans,
    profile_bbv,
    project_vectors,
    run_simpoint,
    select_simpoints,
)


class TestBBVProfiling:
    def test_profile_shapes_and_normalization(self, micro):
        profile = profile_bbv(micro.program, interval_size=500)
        assert profile.num_intervals >= 10
        assert profile.vectors.shape == (profile.num_intervals,
                                         profile.num_blocks)
        sums = profile.vectors.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert profile.interval_lengths[:-1].min() == 500
        assert profile.total_instructions > 0

    def test_max_instructions_cap(self, micro):
        profile = profile_bbv(micro.program, interval_size=100,
                              max_instructions=1000)
        assert profile.total_instructions == 1000
        assert profile.num_intervals == 10

    def test_invalid_interval(self, micro):
        with pytest.raises(ValueError):
            profile_bbv(micro.program, interval_size=0)

    def test_projection_reduces_dimension(self, micro):
        profile = profile_bbv(micro.program, interval_size=500)
        projected = project_vectors(profile, dimensions=5, seed=1)
        assert projected.shape == (profile.num_intervals, 5)

    def test_projection_noop_when_already_small(self, micro):
        profile = profile_bbv(micro.program, interval_size=500)
        projected = project_vectors(profile, dimensions=10_000)
        assert projected.shape == profile.vectors.shape


class TestKMeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(30, 3))
        b = rng.normal(5.0, 0.1, size=(30, 3))
        data = np.vstack([a, b])
        result = kmeans(data, k=2, seed=1)
        labels_a = set(result.labels[:30])
        labels_b = set(result.labels[30:])
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(60, 4))
        inertias = [kmeans(data, k, seed=2).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_k_capped_by_points(self):
        data = np.zeros((3, 2))
        result = kmeans(data, k=10)
        assert result.k == 3

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), k=2)

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_labels_and_sizes_consistent(self, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(40, 3))
        result = kmeans(data, k=k, seed=seed)
        assert result.labels.shape == (40,)
        assert result.labels.min() >= 0 and result.labels.max() < result.k
        assert result.cluster_sizes().sum() == 40
        assert np.isfinite(result.centroids).all()

    def test_choose_clustering_prefers_few_clusters_for_uniform_data(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0.0, 0.01, size=(50, 3))
        result = choose_clustering(data, max_k=6, seed=0)
        assert result.k <= 3

    def test_choose_clustering_finds_structure(self):
        rng = np.random.default_rng(4)
        blobs = [rng.normal(center, 0.05, size=(20, 2))
                 for center in (0.0, 3.0, 6.0)]
        data = np.vstack(blobs)
        result = choose_clustering(data, max_k=8, seed=0)
        assert result.k >= 2


class TestSimPointEstimator:
    def test_weights_sum_to_one(self, micro):
        profile = profile_bbv(micro.program, interval_size=500)
        simpoints, clustering = select_simpoints(profile, max_clusters=5)
        assert sum(p.weight for p in simpoints) == pytest.approx(1.0)
        assert all(0 <= p.interval_index < profile.num_intervals
                   for p in simpoints)
        assert clustering.k >= 1

    def test_run_simpoint_produces_reasonable_estimate(
            self, micro, machine_8way, micro_reference):
        result = run_simpoint(micro.program, machine_8way, interval_size=1000,
                              max_clusters=6, measure_energy=True)
        assert result.simpoints
        assert result.instructions_detailed > 0
        assert result.cpi > 0
        assert result.epi > 0
        # SimPoint should land within a loose band of the true CPI; its
        # error is allowed to be much larger than SMARTS' (that is the
        # point of Figure 8) but it should not be wild on a tiny program.
        error = abs(result.cpi - micro_reference.cpi) / micro_reference.cpi
        assert error < 1.0

    def test_early_termination_skips_tail(self, micro, machine_8way):
        result = run_simpoint(micro.program, machine_8way, interval_size=1000,
                              max_clusters=3)
        total = result.instructions_detailed + result.instructions_fastforwarded
        # SimPoint stops after the last selected interval, so it should
        # not process the entire program unless the last interval is last.
        assert total <= 15_000

    def test_deterministic_given_seed(self, micro, machine_8way):
        a = run_simpoint(micro.program, machine_8way, interval_size=1000,
                         max_clusters=4, seed=5)
        b = run_simpoint(micro.program, machine_8way, interval_size=1000,
                         max_clusters=4, seed=5)
        assert a.cpi == pytest.approx(b.cpi)
        assert [p.interval_index for p in a.simpoints] == \
            [p.interval_index for p in b.simpoints]
