"""Golden equivalence of the trace-compiled engine against the interpreter.

The correctness contract of ``repro.functional.fastpath`` is exactness:
for any program and any execution schedule, the block-compiled engine
must leave *bit-identical* architectural state, warm microarchitectural
state (caches, TLBs, predictor tables, history, BTB, RAS — LRU order and
statistics included), and therefore bit-identical paper estimates
(``RunResult.estimates_dict()``) compared to the per-instruction
interpreter.  These tests pin that contract at every layer:

* the bulk ``warm_many`` entry points against their per-access
  specifications,
* plain and warmed execution (including partial-block fallbacks and
  ``max_instructions`` budgets),
* checkpoint builds,
* full estimation runs in the shape of the fig6/fig7 suite grids and the
  table5 bias measurement, across strategies and metrics.

They also guard the *count-based* performance contract CI relies on
(dispatch/closure-call counts, never wall-clock — the CI box is
single-core): fastpath execution must retire the overwhelming majority
of instructions through compiled blocks.
"""

from __future__ import annotations

import random

import pytest

from repro.api import RunSpec, StratifiedStrategy, SystematicStrategy, run_spec
from repro.branch.unit import BranchUnit
from repro.checkpoint import build_checkpoints
from repro.config.machines import BranchConfig
from repro.detailed.state import MicroarchState
from repro.functional.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    create_core,
    engine_name,
)
from repro.functional.fastpath import (
    BRANCH_COND,
    BRANCH_JAL,
    BRANCH_JR,
    BRANCH_JUMP,
    EVENT_IFETCH,
    EVENT_LOAD,
    EVENT_STORE,
    FastCore,
    compiled_program,
)
from repro.functional.simulator import FunctionalCore
from repro.functional.warming import FunctionalWarmer
from repro.harness.bias import measure_bias
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass, Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_benchmark


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    """Keep checkpoint and run caches out of the repository."""
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "runs"))


def small_program(name: str):
    if name == "micro.syn":
        from repro.workloads import micro_benchmark

        return micro_benchmark().program
    return get_benchmark(name, scale=0.05).program


#: Workloads spanning the behaviours the suite exercises: integer loops,
#: pointer chasing, FP kernels, and branch-heavy control flow.
WORKLOADS = ("micro.syn", "gzip.syn", "mcf.syn", "ammp.syn", "gcc.syn")


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_default_is_fastpath(self, monkeypatch, micro):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert DEFAULT_ENGINE == "fastpath"
        assert engine_name() == "fastpath"
        assert isinstance(create_core(micro.program), FastCore)

    def test_env_selects_interpreter(self, monkeypatch, micro):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        core = create_core(micro.program)
        assert type(core) is FunctionalCore

    def test_unknown_engine_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError, match="unknown functional engine"):
            engine_name()

    def test_explicit_engine_overrides_env(self, monkeypatch, micro):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert isinstance(create_core(micro.program, engine="fastpath"),
                          FastCore)

    def test_registry_names(self):
        assert set(ENGINES) == {"interp", "fastpath"}

    def test_compilation_memoized_per_program(self, micro):
        assert compiled_program(micro.program) is \
            compiled_program(micro.program)


# ----------------------------------------------------------------------
# Bulk warmers against their per-access specifications
# ----------------------------------------------------------------------
class TestWarmManyEquivalence:
    def test_hierarchy_warm_many_matches_per_access(self, machine_8way):
        """A random interleaved I/D stream drives both paths identically."""
        rng = random.Random(7)
        reference = MemoryHierarchy(machine_8way)
        bulk = MemoryHierarchy(machine_8way)
        events = []
        for _ in range(4000):
            kind = rng.choice((EVENT_IFETCH, EVENT_IFETCH, EVENT_LOAD,
                               EVENT_STORE))
            # Small and large strides: hits, conflict misses, TLB churn.
            address = rng.randrange(0, 1 << 17) & ~7
            events.append(address << 2 | kind)
            if kind == EVENT_IFETCH:
                reference.access_instruction(address)
            else:
                reference.access_data(address, kind == EVENT_STORE)
        bulk.warm_many(events)
        assert bulk.snapshot_state() == reference.snapshot_state()
        assert bulk.stats_summary() == reference.stats_summary()
        for name in ("l1i", "l1d", "l2"):
            ref_stats = getattr(reference, name).stats
            new_stats = getattr(bulk, name).stats
            assert new_stats.evictions == ref_stats.evictions
            assert new_stats.writebacks == ref_stats.writebacks

    def test_branch_warm_many_matches_warm(self, machine_8way):
        """Random conditional/JAL/JR/JUMP streams train identically."""
        rng = random.Random(11)
        config = machine_8way.branch
        reference = BranchUnit(config)
        bulk = BranchUnit(config)
        kinds = {BRANCH_COND: Opcode.BEQ, BRANCH_JAL: Opcode.JAL,
                 BRANCH_JR: Opcode.JR, BRANCH_JUMP: Opcode.JUMP}
        events = []
        for _ in range(3000):
            kind = rng.choice((BRANCH_COND, BRANCH_COND, BRANCH_COND,
                               BRANCH_JAL, BRANCH_JR, BRANCH_JUMP))
            pc = rng.randrange(0, 400)
            taken = 1 if kind != BRANCH_COND or rng.random() < 0.6 else 0
            target = rng.randrange(0, 400)
            events.extend((kind, pc, taken, target))
            reference.warm(DynInst(
                seq=0, pc=pc, op=kinds[kind], opclass=OpClass.BRANCH,
                rd=None, srcs=(), mem_addr=None, is_load=False,
                is_store=False, is_branch=True,
                is_conditional=kind == BRANCH_COND,
                taken=bool(taken), next_pc=target if taken else pc + 1))
        # Conditional not-taken events carry the fall-through target,
        # exactly as the compiled blocks emit them.
        for i in range(0, len(events), 4):
            if events[i] == BRANCH_COND and not events[i + 2]:
                events[i + 3] = events[i + 1] + 1
        bulk.warm_many(events)
        assert bulk.warm_state() == reference.warm_state()
        assert bulk.btb.lookups == reference.btb.lookups
        assert bulk.btb.hits == reference.btb.hits

    def test_small_btb_geometry(self):
        """Eviction-heavy BTB and shallow RAS still match exactly."""
        config = BranchConfig(table_entries=64, history_bits=4,
                              btb_entries=4, btb_assoc=2, ras_entries=2)
        rng = random.Random(3)
        reference, bulk = BranchUnit(config), BranchUnit(config)
        events = []
        for _ in range(1000):
            kind = rng.choice((BRANCH_COND, BRANCH_JAL, BRANCH_JR))
            pc = rng.randrange(0, 64)
            taken = 1 if kind != BRANCH_COND or rng.random() < 0.5 else 0
            target = rng.randrange(0, 64)
            if kind == BRANCH_COND and not taken:
                target = pc + 1
            events.extend((kind, pc, taken, target))
            op = {BRANCH_COND: Opcode.BNE, BRANCH_JAL: Opcode.JAL,
                  BRANCH_JR: Opcode.JR}[kind]
            reference.warm(DynInst(
                seq=0, pc=pc, op=op, opclass=OpClass.BRANCH, rd=None,
                srcs=(), mem_addr=None, is_load=False, is_store=False,
                is_branch=True, is_conditional=kind == BRANCH_COND,
                taken=bool(taken), next_pc=target))
        bulk.warm_many(events)
        assert bulk.warm_state() == reference.warm_state()


# ----------------------------------------------------------------------
# Execution equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", WORKLOADS)
class TestExecutionEquivalence:
    def test_plain_run_bit_identical(self, name):
        program = small_program(name)
        interp = FunctionalCore(program)
        fast = FastCore(program)
        assert interp.run_to_completion() == fast.run_to_completion()
        assert interp.state == fast.state
        assert interp.instructions_retired == fast.instructions_retired

    def test_warmed_run_bit_identical(self, name, machine_8way):
        program = small_program(name)
        states, stats, arches, written_sets = [], [], [], []
        for engine in ("interp", "fastpath"):
            core = create_core(program, engine=engine)
            microarch = MicroarchState(machine_8way)
            microarch.flush()
            warmer = FunctionalWarmer(microarch)
            written: set[int] = set()
            core.run_warmed(1 << 60, warmer, written)
            states.append(microarch.snapshot_state())
            stats.append(microarch.stats_summary())
            arches.append(core.state)
            written_sets.append(written)
        assert states[0] == states[1]
        assert stats[0] == stats[1]
        assert arches[0] == arches[1]
        assert written_sets[0] == written_sets[1]

    def test_chunked_budgets_bit_identical(self, name, machine_8way):
        """Odd budgets force mid-block stops onto the interpreter path."""
        program = small_program(name)
        interp = FunctionalCore(program)
        fast = FastCore(program)
        warm_i = FunctionalWarmer(MicroarchState(machine_8way))
        warm_f = FunctionalWarmer(MicroarchState(machine_8way))
        for chunk in (1, 7, 2, 137, 13, 999, 3, 20_000):
            assert interp.run_warmed(chunk, warm_i) == \
                fast.run_warmed(chunk, warm_f)
            assert interp.state == fast.state
            assert interp.instructions_retired == fast.instructions_retired
        assert warm_i.microarch.snapshot_state() == \
            warm_f.microarch.snapshot_state()
        assert warm_i.instructions_warmed == warm_f.instructions_warmed

    def test_max_instructions_budget(self, name):
        program = small_program(name)
        interp = FunctionalCore(program, max_instructions=1234)
        fast = FastCore(program, max_instructions=1234)
        assert interp.run(10_000) == fast.run(10_000)
        assert interp.halted == fast.halted
        assert interp.state == fast.state

    def test_checkpoint_build_identical(self, name, machine_8way,
                                        monkeypatch):
        program = small_program(name)
        built = []
        for engine in ("interp", "fastpath"):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            built.append(build_checkpoints(program, machine_8way,
                                           unit_size=25))
        interp_ckpt, fast_ckpt = built
        assert interp_ckpt.benchmark_length == fast_ckpt.benchmark_length
        assert [s.position for s in interp_ckpt.snapshots] == \
            [s.position for s in fast_ckpt.snapshots]
        for left, right in zip(interp_ckpt.snapshots, fast_ckpt.snapshots):
            assert left.pc == right.pc
            assert left.int_regs == right.int_regs
            assert left.fp_regs == right.fp_regs
            assert left.mem_delta == right.mem_delta
            assert left.micro == right.micro
            assert left.micro_delta == right.micro_delta


# ----------------------------------------------------------------------
# Estimate-level golden equivalence (the fig6/fig7/table5 shapes)
# ----------------------------------------------------------------------
def _estimation_specs() -> list[RunSpec]:
    """The suite-grid shapes: fig6 (CPI, both machines), fig7 (EPI),
    no-functional-warming, and a stratified design."""
    systematic = SystematicStrategy(unit_size=25, n_init=60, max_rounds=2,
                                    detailed_warming=50)
    return [
        RunSpec(benchmark="micro.syn", machine="8-way",
                strategy=systematic, metric="cpi"),
        RunSpec(benchmark="micro.syn", machine="16-way",
                strategy=systematic, metric="cpi"),
        RunSpec(benchmark="micro.syn", machine="8-way",
                strategy=systematic, metric="epi"),
        RunSpec(benchmark="gzip.syn", machine="8-way", scale=0.05,
                strategy=systematic, metric="cpi", checkpoints="auto"),
        RunSpec(benchmark="micro.syn", machine="8-way",
                strategy=SystematicStrategy(
                    unit_size=25, n_init=40, max_rounds=1,
                    detailed_warming=50, functional_warming=False)),
        RunSpec(benchmark="micro.syn", machine="8-way", seed=3,
                strategy=StratifiedStrategy(
                    unit_size=25, sample_size=60, units_per_interval=10,
                    detailed_warming=50)),
    ]


def test_estimates_bit_identical_across_engines(monkeypatch):
    """``RunResult.estimates_dict()`` is engine-independent, per spec."""
    payloads = {}
    for engine in ("interp", "fastpath"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        payloads[engine] = [run_spec(spec).estimates_dict()
                            for spec in _estimation_specs()]
    assert payloads["interp"] == payloads["fastpath"]


def test_bias_measurement_bit_identical(monkeypatch, micro, machine_8way,
                                        micro_reference):
    """The table5 bias measurement is engine-independent."""
    results = {}
    for engine in ("interp", "fastpath"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        measurement = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=60, detailed_warming=50,
            functional_warming=True, phases=2)
        results[engine] = (measurement.bias, measurement.phase_errors)
    assert results["interp"] == results["fastpath"]


# ----------------------------------------------------------------------
# Count-based performance guard (no wall-clock: single-core CI)
# ----------------------------------------------------------------------
class TestDispatchCounts:
    def test_fastpath_executes_blocks_not_instructions(self, machine_8way):
        program = small_program("gzip.syn")
        core = FastCore(program)
        warmer = FunctionalWarmer(MicroarchState(machine_8way))
        executed = core.run_warmed(1 << 60, warmer)
        assert executed > 10_000
        block_instructions = executed - core.fallback_instructions
        # Virtually everything retires through compiled blocks...
        assert block_instructions / executed > 0.95
        # ...and each closure call covers several instructions, so the
        # dispatch count (closure calls + stepped instructions) is a
        # small fraction of the per-instruction dispatch the interpreter
        # would perform.
        dispatches = core.blocks_executed + core.fallback_instructions
        assert dispatches < 0.6 * executed

    def test_fastforward_budgets_stay_block_dominated(self, machine_8way):
        """The SMARTS schedule (short warm/measure windows between
        fast-forwards) must not degrade into per-instruction stepping."""
        program = small_program("mcf.syn")
        core = FastCore(program)
        warmer = FunctionalWarmer(MicroarchState(machine_8way))
        executed = 0
        while True:
            advanced = core.run_warmed(450, warmer)  # k*U - W - U shape
            executed += advanced
            if advanced < 450:
                break
            executed += core.run(75)  # detailed window stand-in
        assert executed > 10_000
        assert core.fallback_instructions / executed < 0.35
