"""Shared fixtures for the test suite.

Heavy objects (the micro benchmark, its reference simulation) are
session-scoped so the many tests that need them pay the simulation cost
once.
"""

from __future__ import annotations

import pytest

from repro.config import scaled_16way, scaled_8way
from repro.harness.reference import run_reference
from repro.workloads import micro_benchmark


@pytest.fixture(autouse=True)
def no_fault_plan(monkeypatch):
    """No test inherits a fault plan from another (or from the shell)."""
    from repro.reliability.faults import clear_plan

    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_MAX_ATTEMPTS", raising=False)
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="session")
def machine_8way():
    """Scaled 8-way baseline machine configuration."""
    return scaled_8way()


@pytest.fixture(scope="session")
def machine_16way():
    """Scaled 16-way aggressive machine configuration."""
    return scaled_16way()


@pytest.fixture(scope="session")
def micro():
    """A tiny (~15k instruction) benchmark used throughout the tests."""
    return micro_benchmark()


@pytest.fixture(scope="session")
def micro_reference(micro, machine_8way):
    """Full-stream detailed reference of the micro benchmark (8-way)."""
    return run_reference(micro.program, machine_8way, chunk_size=25,
                         use_cache=False)


@pytest.fixture(scope="session")
def micro_reference_16way(micro, machine_16way):
    """Full-stream detailed reference of the micro benchmark (16-way)."""
    return run_reference(micro.program, machine_16way, chunk_size=25,
                         use_cache=False)
