"""Tests for the resumable MeasurementSession and the adaptive strategy.

The load-bearing property is *golden equivalence*: a session extended in
several batches — including batches that insert units within W of
already-measured ones — must produce unit-for-unit bit-identical results
to a one-shot run over the same final unit set.  The CI re-runs this
file under ``REPRO_ENGINE=interp`` as well, so the equivalence holds on
both execution engines.
"""

import pytest

from repro.api import (
    AdaptiveStrategy,
    RunSpec,
    Session,
    StudyContext,
    run_study,
)
from repro.core.sampling import SamplingUnit, StratifiedSamplingPlan
from repro.core.smarts import SmartsEngine


WARMING = 100
UNIT = 25


def one_shot(micro, machine, length, indices, **kwargs):
    engine = SmartsEngine(machine=machine, **kwargs)
    plan = StratifiedSamplingPlan(unit_size=UNIT,
                                  unit_indices=tuple(sorted(indices)),
                                  detailed_warming=WARMING,
                                  functional_warming=True)
    return engine.run(micro.program, plan, length)


def batched(micro, machine, length, batches, **kwargs):
    engine = SmartsEngine(machine=machine, **kwargs)
    session = engine.start(micro.program, length, unit_size=UNIT,
                           detailed_warming=WARMING,
                           functional_warming=True)
    for batch in batches:
        session.extend(SamplingUnit(index=i, start=i * UNIT, size=UNIT)
                       for i in batch)
    return session.result()


class TestGoldenEquivalence:
    def assert_identical(self, a, b):
        assert [u.index for u in a.units] == [u.index for u in b.units]
        for ua, ub in zip(a.units, b.units):
            assert ua == ub  # bit-identical UnitRecords
        assert a.instructions_measured == b.instructions_measured

    def test_progressive_refinement_matches_one_shot(
            self, micro, machine_8way, micro_reference):
        """Stride 4 -> odd multiples of 2 -> odd indices: the adaptive
        refinement pattern, with every consecutive pair within W."""
        length = micro_reference.instructions
        limit = 40
        batches = [list(range(0, limit, 4)),
                   list(range(2, limit, 4)),
                   list(range(1, limit, 2))]
        final = sorted(i for b in batches for i in b)
        merged = batched(micro, machine_8way, length, batches)
        reference = one_shot(micro, machine_8way, length, final)
        self.assert_identical(merged, reference)

    def test_insertion_within_warming_remeasures_successor(
            self, micro, machine_8way, micro_reference):
        """Adding unit 8 after unit 10 was measured changes unit 10's
        warming gap and pipeline priming; its record must be refreshed."""
        length = micro_reference.instructions
        merged = batched(micro, machine_8way, length, [[10], [8]])
        reference = one_shot(micro, machine_8way, length, [8, 10])
        self.assert_identical(merged, reference)

    def test_sparse_batches_out_of_order(
            self, micro, machine_8way, micro_reference):
        """Batches far apart (no chains) and delivered out of stream
        order still merge into the one-shot result."""
        length = micro_reference.instructions
        merged = batched(micro, machine_8way, length,
                         [[40, 80], [10, 60], [25]])
        reference = one_shot(micro, machine_8way, length,
                             [10, 25, 40, 60, 80])
        self.assert_identical(merged, reference)

    def test_energy_measurements_survive_merging(
            self, micro, machine_8way, micro_reference):
        length = micro_reference.instructions
        merged = batched(micro, machine_8way, length, [[12], [9], [10]],
                         measure_energy=True)
        reference = one_shot(micro, machine_8way, length, [9, 10, 12],
                             measure_energy=True)
        self.assert_identical(merged, reference)
        assert all(u.energy > 0 for u in merged.units)

    def test_duplicate_and_out_of_population_units_ignored(
            self, micro, machine_8way, micro_reference):
        length = micro_reference.instructions
        engine = SmartsEngine(machine=machine_8way)
        session = engine.start(micro.program, length, unit_size=UNIT,
                               detailed_warming=WARMING)
        population = session.population_size
        assert session.extend([SamplingUnit(index=5, start=5 * UNIT,
                                            size=UNIT)]) == 1
        # Re-sending the same unit (or one beyond the stream) is a no-op.
        assert session.extend([
            SamplingUnit(index=5, start=5 * UNIT, size=UNIT),
            SamplingUnit(index=population + 3,
                         start=(population + 3) * UNIT, size=UNIT),
        ]) == 0
        assert sorted(session.measured_indices) == [5]

    def test_geometry_mismatch_rejected(
            self, micro, machine_8way, micro_reference):
        engine = SmartsEngine(machine=machine_8way)
        session = engine.start(micro.program, micro_reference.instructions,
                               unit_size=UNIT, detailed_warming=WARMING)
        with pytest.raises(ValueError, match="geometry"):
            session.extend([SamplingUnit(index=2, start=0, size=UNIT)])


class TestTruncatedFinalUnit:
    def test_truncated_unit_flagged_and_excluded(
            self, micro, machine_8way, micro_reference):
        """Regression: sampling across the end of the stream used to let
        a partial unit enter the CPI estimate with full weight."""
        actual = micro_reference.instructions
        unit = next(u for u in (23, 29, 31, 37) if actual % u)
        last = actual // unit   # starts before the halt, ends after it
        engine = SmartsEngine(machine=machine_8way)
        session = engine.start(micro.program, actual + unit, unit_size=unit,
                               detailed_warming=WARMING)
        session.extend(SamplingUnit(index=i, start=i * unit, size=unit)
                       for i in (last - 2, last - 1, last))
        run = session.result()
        by_index = {u.index: u for u in run.units}
        assert by_index[last].truncated
        assert 0 < by_index[last].instructions < unit
        assert not by_index[last - 1].truncated
        # The estimate covers only the complete units; the bookkeeping
        # still counts all three measurements.
        assert run.cpi.sample_size == 2
        assert run.sample_size == 3
        complete_mean = (by_index[last - 2].cpi + by_index[last - 1].cpi) / 2
        assert run.cpi.mean == pytest.approx(complete_mean)


class TestAdaptiveStrategy:
    def test_run_is_deterministic(self, micro, machine_8way, micro_reference):
        strategy = AdaptiveStrategy(unit_size=UNIT, n_min=10, batch_size=20,
                                    detailed_warming=WARMING)
        length = micro_reference.instructions
        first = strategy.run(micro.program, machine_8way, length,
                             epsilon=0.2)
        second = strategy.run(micro.program, machine_8way, length,
                              epsilon=0.2)
        assert [u.index for u in first.final_run.units] == \
            [u.index for u in second.final_run.units]
        for ua, ub in zip(first.final_run.units, second.final_run.units):
            assert ua == ub
        assert first.info == second.info

    def test_stops_at_target_with_guards_respected(
            self, micro, machine_8way, micro_reference):
        strategy = AdaptiveStrategy(unit_size=UNIT, n_min=10, batch_size=20,
                                    detailed_warming=WARMING)
        outcome = strategy.run(micro.program, machine_8way,
                               micro_reference.instructions, epsilon=0.2)
        run = outcome.final_run
        assert run.sample_size >= strategy.n_min
        assert outcome.info["stopping"] in ("target", "census")
        if outcome.info["stopping"] == "target":
            assert outcome.info["achieved_ci"] <= 0.2
        # The trajectory is monotone in n and ends at the final n.
        ns = [b["n"] for b in outcome.info["batches"]]
        assert ns == sorted(ns) and ns[-1] == run.sample_size

    def test_n_max_caps_the_sample(self, micro, machine_8way,
                                   micro_reference):
        strategy = AdaptiveStrategy(unit_size=UNIT, n_min=5, n_max=12,
                                    batch_size=6, detailed_warming=WARMING)
        outcome = strategy.run(micro.program, machine_8way,
                               micro_reference.instructions,
                               epsilon=0.0001)   # unreachable target
        assert outcome.final_run.sample_size <= 12
        assert outcome.info["stopping"] == "n_max"

    def test_census_terminates_on_tiny_population(
            self, micro, machine_8way, machine_16way):
        strategy = AdaptiveStrategy(unit_size=UNIT, n_min=5, batch_size=8,
                                    detailed_warming=WARMING)
        outcome = strategy.run(micro.program, machine_8way, 20 * UNIT,
                               epsilon=0.0001)
        run = outcome.final_run
        assert outcome.info["stopping"] in ("census", "target")
        assert run.sample_size == 20
        # A census estimate is exact: the corrected CI collapses to 0.
        assert run.cpi.corrected_confidence_interval(0.997) == 0.0

    def test_measured_instructions_equal_one_shot(
            self, micro, machine_8way, micro_reference):
        """Re-measurements and context replays must not inflate the
        statistical cost accounting: measured == n * U exactly, as the
        equivalent one-shot run would report."""
        strategy = AdaptiveStrategy(unit_size=UNIT, n_min=10, batch_size=15,
                                    detailed_warming=WARMING)
        outcome = strategy.run(micro.program, machine_8way,
                               micro_reference.instructions, epsilon=0.1)
        run = outcome.final_run
        full_units = sum(1 for u in run.units if u.instructions == UNIT)
        partial = sum(u.instructions for u in run.units
                      if u.instructions < UNIT)
        assert run.instructions_measured == full_units * UNIT + partial


@pytest.fixture(scope="module")
def study_ctx(tmp_path_factory):
    """Tiny isolated context for the adaptive-vs-two-round study."""
    mp = pytest.MonkeyPatch()
    base = tmp_path_factory.mktemp("adaptive_study")
    mp.setenv("REPRO_RUN_CACHE_DIR", str(base / "run"))
    mp.setenv("REPRO_CACHE_DIR", str(base / "ref"))
    mp.setenv("REPRO_CHECKPOINT_DIR", str(base / "ckpt"))
    ctx = StudyContext(
        scale=0.05,
        fast=True,
        suite_names=["gzip.syn"],
        unit_size=50,
        n_init=60,
        epsilon=0.2,
        use_cache=True,
    )
    yield ctx
    mp.undo()


class TestAdaptiveStudy:
    def test_acceptance_criterion(self, study_ctx):
        """The PR's acceptance bar at test scale: adaptive meets the
        corrected-CI target on every benchmark and spends no more
        measured instructions than two-round on at least half."""
        report = run_study("adaptive_vs_two_round", study_ctx)
        data = report.data
        assert data["total"] >= 3   # suite subset + the two new workloads
        assert data["meets_target_count"] == data["total"]
        assert 2 * data["cheaper_count"] >= data["total"]
        assert {"phaseshift.syn", "irregular.syn"} <= set(data["entries"])
        for entry in data["entries"].values():
            assert entry["adaptive_ci_corrected"] <= study_ctx.epsilon
            assert entry["adaptive_n"] <= entry["adaptive_measured"] / 50 + 1
        assert report.rows  # tidy export carries one row per benchmark
