"""Checkpoint store: build, persist, restore semantics, invalidation.

The regression test this file exists for: a checkpoint set built for one
machine geometry must *never* be restored after the geometry changes —
a modified cache/TLB/predictor shape maps to a different store key, the
stale set is reported with a :class:`StaleCheckpointWarning`, and a
fresh build produces exactly the estimates a from-zero run produces.
"""

from __future__ import annotations

import copy
import pickle
import zlib
from dataclasses import replace

import pytest

from repro.checkpoint import (
    CheckpointStore,
    Snapshot,
    StaleCheckpointWarning,
    build_checkpoints,
    machine_warm_fingerprint,
    program_fingerprint,
)
from repro.config.machines import CacheConfig
from repro.core.procedure import recommended_warming
from repro.core.sampling import SystematicSamplingPlan
from repro.core.smarts import SmartsEngine
from repro.detailed.state import MicroarchState
from repro.functional.engine import create_core
from repro.functional.simulator import FunctionalCore
from repro.functional.warming import FunctionalWarmer


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


@pytest.fixture(scope="module")
def plan():
    return SystematicSamplingPlan.for_sample_size(
        benchmark_length=15_000, unit_size=25, target_sample_size=40,
        detailed_warming=50)


def shrunk_l1d(machine):
    """The same machine with a halved, direct-mapped L1D."""
    return replace(machine, l1d=CacheConfig(2 * 1024, 1, block_bytes=32))


# ----------------------------------------------------------------------
# Build and restore mechanics
# ----------------------------------------------------------------------
class TestBuildAndRestore:
    def test_build_records_length_and_grid(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25,
                                 stride=4)
        chunk = 25 * 4
        assert ckpt.benchmark_length > 0
        assert len(ckpt.snapshots) == ckpt.benchmark_length // chunk
        assert [s.position for s in ckpt.snapshots] == [
            chunk * (i + 1) for i in range(len(ckpt.snapshots))]

    def test_restore_reproduces_functional_state(self, micro, machine_8way):
        """Restoring then executing equals executing from zero."""
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        target = ckpt.snapshots[5].position + 37  # off-grid position

        reference = FunctionalCore(micro.program)
        reference.run(target)

        core = FunctionalCore(micro.program)
        micro_state = MicroarchState(machine_8way)
        index = ckpt.restore_point(target)
        skipped = ckpt.restore_into(index, core, micro_state)
        assert skipped == ckpt.snapshots[index].position
        core.run(target - core.instructions_retired)

        assert core.instructions_retired == reference.instructions_retired
        assert core.state == reference.state

    def test_restore_refuses_backward_jumps(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        core = FunctionalCore(micro.program)
        core.run(ckpt.snapshots[3].position + 1)
        with pytest.raises(ValueError, match="backwards"):
            ckpt.restore_into(3, core, MicroarchState(machine_8way))

    def test_restore_point_bounds(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        first = ckpt.snapshots[0].position
        assert ckpt.restore_point(first - 1) is None
        assert ckpt.restore_point(first) == 0
        assert ckpt.restore_point(ckpt.benchmark_length * 2) == (
            len(ckpt.snapshots) - 1)

    def test_roundtrip_through_disk(self, store, micro, machine_8way):
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        store.put(built, micro.program, machine_8way)
        loaded = store.get(micro.program, machine_8way, unit_size=25)
        assert loaded is not None
        assert loaded.benchmark_length == built.benchmark_length
        assert [s.position for s in loaded.snapshots] == [
            s.position for s in built.snapshots]
        assert loaded.snapshots[0].micro == built.snapshots[0].micro

    def test_get_or_build_builds_once(self, store, micro, machine_8way):
        first = store.get_or_build(micro.program, machine_8way, unit_size=25)
        path = store.path_for(micro.program, machine_8way, 25)
        stamp = path.stat().st_mtime_ns
        again = store.get_or_build(micro.program, machine_8way, unit_size=25)
        assert path.stat().st_mtime_ns == stamp
        assert again.benchmark_length == first.benchmark_length


# ----------------------------------------------------------------------
# Invalidation (the regression this file guards)
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_geometry_change_changes_fingerprint(self, machine_8way):
        assert (machine_warm_fingerprint(shrunk_l1d(machine_8way))
                != machine_warm_fingerprint(machine_8way))

    def test_timing_change_keeps_fingerprint(self, machine_8way):
        """Latency/width-only changes reuse the same warm checkpoints."""
        retimed = replace(machine_8way, mem_latency=250, l2_latency=20,
                          commit_width=4, ruu_size=64)
        assert (machine_warm_fingerprint(retimed)
                == machine_warm_fingerprint(machine_8way))

    @pytest.mark.filterwarnings(
        "ignore::repro.checkpoint.StaleCheckpointWarning")
    def test_modified_geometry_never_restores_stale_snapshot(
            self, store, micro, machine_8way, plan):
        """Cache-geometry change: warn, rebuild, and match a cold run."""
        store.get_or_build(micro.program, machine_8way, unit_size=25)

        modified = shrunk_l1d(machine_8way)
        with pytest.warns(StaleCheckpointWarning):
            missed = store.get(micro.program, modified, unit_size=25)
        assert missed is None

        rebuilt = store.get_or_build(micro.program, modified, unit_size=25)
        assert rebuilt.machine_hash == machine_warm_fingerprint(modified)

        engine = SmartsEngine(machine=modified, measure_energy=False)
        serial = engine.run(micro.program, plan, 15_000)
        restored = engine.run(micro.program, plan, 15_000,
                              checkpoints=rebuilt)
        assert restored.units == serial.units
        assert restored.checkpoint_restores > 0

    def test_engine_rejects_mismatched_set(self, micro, machine_8way,
                                           machine_16way, plan):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        engine = SmartsEngine(machine=machine_16way, measure_energy=False)
        with pytest.raises(ValueError, match="different program or machine"):
            engine.run(micro.program, plan, 15_000, checkpoints=ckpt)

    def test_program_change_changes_fingerprint(self, micro):
        from repro.workloads import get_benchmark

        other = get_benchmark("gzip.syn", scale=0.05).program
        assert program_fingerprint(other) != program_fingerprint(micro.program)

    def test_corrupt_file_is_a_miss(self, store, micro, machine_8way):
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        path = store.put(built, micro.program, machine_8way)
        path.write_bytes(b"not a checkpoint")
        assert store.get(micro.program, machine_8way, unit_size=25) is None


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_entries_lists_metadata(self, store, micro, machine_8way,
                                    machine_16way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        store.get_or_build(micro.program, machine_16way, unit_size=25)
        rows = store.entries()
        assert len(rows) == 2
        assert {row["machine_hash"] for row in rows} == {
            machine_warm_fingerprint(machine_8way),
            machine_warm_fingerprint(machine_16way)}
        for row in rows:
            assert row["benchmark"] == micro.program.name
            assert row["snapshots"] > 0
            assert row["size_bytes"] > 0

    def test_gc_removes_stale_versions_and_tmp(self, store, micro,
                                               machine_8way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        stale = store.directory / "old--deadbeef--mfeed--u25--v0.ckpt"
        stale.write_bytes(b"stale")
        leftover = store.directory / "partial.tmp"
        leftover.write_bytes(b"tmp")
        removed = store.gc()
        assert stale in removed and leftover in removed
        assert store.get(micro.program, machine_8way, unit_size=25) is not None

    def test_gc_all(self, store, micro, machine_8way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        store.gc(remove_all=True)
        assert list(store.directory.glob("*.ckpt")) == []

    def test_disabled_store_is_inert(self, tmp_path, micro, machine_8way):
        disabled = CheckpointStore(tmp_path / "never", enabled=False)
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        disabled.put(built, micro.program, machine_8way)
        assert not (tmp_path / "never").exists()
        assert disabled.get(micro.program, machine_8way, 25) is None


# ----------------------------------------------------------------------
# BBV profile caching (the stratified strategy's phase-labeling pass)
# ----------------------------------------------------------------------
class TestBBVProfileCache:
    def test_get_or_profile_builds_once_and_loads_exactly(
            self, store, micro, monkeypatch):
        import numpy as np

        import repro.simpoint.bbv as bbv_mod

        calls = []
        real = bbv_mod.profile_bbv

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(bbv_mod, "profile_bbv", counting)
        first = store.get_or_profile(micro.program, 500,
                                     max_instructions=15_000)
        second = store.get_or_profile(micro.program, 500,
                                      max_instructions=15_000)
        assert len(calls) == 1          # the second call loaded from disk
        assert np.array_equal(first.vectors, second.vectors)
        assert np.array_equal(first.interval_lengths,
                              second.interval_lengths)
        assert len(list(store.directory.glob("*.bbvp"))) == 1

    def test_different_key_fields_miss(self, store, micro):
        store.get_or_profile(micro.program, 500, max_instructions=15_000)
        assert store.get_bbv_profile(micro.program, 250,
                                     limit=15_000) is None
        assert store.get_bbv_profile(micro.program, 500,
                                     limit=10_000) is None
        assert store.get_bbv_profile(micro.program, 500,
                                     limit=15_000) is not None

    def test_corrupt_profile_is_a_miss(self, store, micro):
        path = store.put_bbv_profile(
            store.get_or_profile(micro.program, 500, max_instructions=15_000),
            micro.program, limit=15_000)
        path.write_bytes(b"garbage")
        assert store.get_bbv_profile(micro.program, 500,
                                     limit=15_000) is None

    def test_bbv_entries_skip_stale_and_corrupt_files(self, store, micro):
        store.get_or_profile(micro.program, 500, max_instructions=15_000)
        (store.directory / "old--bbv-i500-lfull--v0.bbvp").write_bytes(
            b"not a profile")
        rows = store.bbv_entries()
        assert len(rows) == 1
        assert rows[0]["benchmark"] == micro.program.name
        assert rows[0]["intervals"] > 0

    def test_profile_cache_field_disables_persistence(
            self, tmp_path, monkeypatch, micro, machine_8way):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
        from repro.api import StratifiedStrategy

        strategy = StratifiedStrategy(unit_size=25, sample_size=30,
                                      units_per_interval=4,
                                      detailed_warming=50,
                                      profile_cache=False)
        outcome = strategy.run(micro.program, machine_8way, 15_000, seed=3)
        assert outcome.final_run.units
        assert not (tmp_path / "ckpt").exists()
        # Same selection as a persisting run: the field is I/O-only.
        persisting = StratifiedStrategy(unit_size=25, sample_size=30,
                                        units_per_interval=4,
                                        detailed_warming=50)
        assert persisting.run(micro.program, machine_8way, 15_000,
                              seed=3).final_run.units == \
            outcome.final_run.units

    def test_profile_cache_flag_is_io_only_identity(self):
        """The flag cannot change estimates, so it must not change spec
        hashes, equality, or serialized payloads (cached results stay
        valid across the flag)."""
        from repro.api import RunSpec, StratifiedStrategy

        on = RunSpec(benchmark="gzip.syn",
                     strategy=StratifiedStrategy(unit_size=25))
        off = RunSpec(benchmark="gzip.syn",
                      strategy=StratifiedStrategy(unit_size=25,
                                                  profile_cache=False))
        assert on.key() == off.key()
        assert on == off
        assert "profile_cache" not in on.strategy.to_dict()["params"]

    def test_build_plan_accepts_injected_store(self, tmp_path, micro,
                                               machine_8way):
        from repro.api import StratifiedStrategy

        strategy = StratifiedStrategy(unit_size=25, sample_size=30,
                                      units_per_interval=4,
                                      detailed_warming=50)
        disabled = CheckpointStore(tmp_path / "never", enabled=False)
        plan, _ = strategy.build_plan(micro.program, 15_000, machine_8way,
                                      store=disabled)
        assert plan.unit_indices
        assert not (tmp_path / "never").exists()

    def test_unwritable_store_degrades_to_in_memory_profiling(
            self, tmp_path, micro):
        # A *file* at the store path makes mkdir raise: the profile must
        # still come back (computed in memory), never an OSError.
        blocker = tmp_path / "not-a-dir"
        blocker.write_bytes(b"")
        store = CheckpointStore(blocker)
        profile = store.get_or_profile(micro.program, 500,
                                       max_instructions=15_000)
        assert profile.num_intervals > 0

    def test_disabled_store_profiles_without_writing(self, tmp_path, micro):
        disabled = CheckpointStore(tmp_path / "never", enabled=False)
        profile = disabled.get_or_profile(micro.program, 500,
                                          max_instructions=15_000)
        assert profile.num_intervals > 0
        assert not (tmp_path / "never").exists()

    def test_gc_covers_bbv_profiles(self, store, micro):
        store.get_or_profile(micro.program, 500, max_instructions=15_000)
        stale = store.directory / "old--deadbeef--bbv-i500-lfull--v0.bbvp"
        stale.write_bytes(b"stale")
        removed = store.gc()
        assert stale in removed
        assert store.get_bbv_profile(micro.program, 500,
                                     limit=15_000) is not None
        store.gc(remove_all=True)
        assert list(store.directory.glob("*.bbvp")) == []

    def test_stratified_strategy_reuses_cached_profile(
            self, tmp_path, monkeypatch, micro, machine_8way):
        """Same estimates with a cold and a warm profile cache, and the
        second run performs no profiling pass at all."""
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
        from repro.api import StratifiedStrategy

        strategy = StratifiedStrategy(unit_size=25, sample_size=30,
                                      units_per_interval=4,
                                      detailed_warming=50)
        cold = strategy.run(micro.program, machine_8way, 15_000, seed=3)
        import repro.simpoint.bbv as bbv_mod

        def forbidden(*args, **kwargs):
            raise AssertionError("profile_bbv re-ran despite a cached profile")

        monkeypatch.setattr(bbv_mod, "profile_bbv", forbidden)
        warm = strategy.run(micro.program, machine_8way, 15_000, seed=3)
        assert cold.final_run.units == warm.final_run.units
        assert cold.info == warm.info


# ----------------------------------------------------------------------
# Warm-state delta encoding (the size lever behind denser grids)
# ----------------------------------------------------------------------
def v1_format_size(ckpt) -> int:
    """Re-encode a set the way version 1 stored it: every snapshot with
    full warm state and register files, zlib-compressed."""
    snapshots = []
    for index, snap in enumerate(ckpt.snapshots):
        micro, int_regs, fp_regs = ckpt._state_at(index)
        snapshots.append(Snapshot(
            position=snap.position, pc=snap.pc, halted=snap.halted,
            int_regs=list(int_regs), fp_regs=list(fp_regs),
            mem_delta=snap.mem_delta, micro=copy.deepcopy(micro),
            micro_delta=None))
    payload = {"meta": ckpt.to_payload()["meta"], "snapshots": snapshots}
    return len(zlib.compress(pickle.dumps(payload, protocol=4), 6))


class TestDeltaEncoding:
    def test_first_snapshot_full_rest_delta(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        head, tail = ckpt.snapshots[0], ckpt.snapshots[1:]
        assert head.micro and head.micro_delta is None
        assert head.int_regs and head.fp_regs
        assert tail
        for snap in tail:
            assert snap.micro == {} and snap.micro_delta is not None
            assert snap.int_regs == [] and snap.fp_regs == []

    def test_materialized_state_matches_serial_warming(self, micro,
                                                       machine_8way):
        """State at any snapshot equals warming there from scratch."""
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        for index in (len(ckpt.snapshots) - 1, 3, 10):  # backward jump too
            micro_state, int_regs, fp_regs = ckpt._state_at(index)
            core = create_core(micro.program)
            reference = MicroarchState(machine_8way)
            reference.flush()
            core.run_warmed(ckpt.snapshots[index].position,
                            FunctionalWarmer(reference))
            assert micro_state == reference.snapshot_state()
            assert int_regs == core.state.int_regs
            assert fp_regs == core.state.fp_regs

    def test_sets_shrink_at_least_2x_on_table6_configurations(
            self, store, machine_8way):
        """The acceptance criterion: on the Table 6 checkpoint subset the
        on-disk sets are at least 2x smaller than the same snapshot grids
        in the version-1 format (full warm state per snapshot, zlib)."""
        from repro.workloads import get_benchmark

        total_new = total_old = 0
        for name in ("gcc.syn", "mcf.syn", "ammp.syn"):
            program = get_benchmark(name, scale=0.1).program
            ckpt = store.get_or_build(program, machine_8way, 50)
            new_size = store.path_for(program, machine_8way, 50).stat().st_size
            old_size = v1_format_size(ckpt)
            assert old_size > 1.5 * new_size, name
            total_new += new_size
            total_old += old_size
        assert total_old >= 2 * total_new


# ----------------------------------------------------------------------
# Warm-aligned snapshots (unit.start - W restore points)
# ----------------------------------------------------------------------
class TestWarmAlignment:
    def test_aligned_build_interleaves_shifted_grid(self, micro,
                                                    machine_8way):
        warming = recommended_warming(machine_8way)   # 512 on the 8-way
        chunk = 25 * 4
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25,
                                 warm_align=warming)
        residue = (-warming) % chunk
        positions = [snap.position for snap in ckpt.snapshots]
        assert residue in positions
        remainders = {position % chunk for position in positions}
        assert remainders == {0, residue}
        # Base grid intact: the plain-stride build is a subset.
        plain = build_checkpoints(micro.program, machine_8way, unit_size=25)
        assert set(p.position for p in plain.snapshots) <= set(positions)

    def test_zero_residual_fastforward_for_aligned_systematic_run(
            self, micro, machine_8way):
        """A systematic run whose grid lands on the snapshot stride
        restores exactly at unit.start - W: nothing is fast-forwarded."""
        warming = recommended_warming(machine_8way)
        length = 15_000
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25,
                                 warm_align=warming)
        plan = SystematicSamplingPlan(unit_size=25, interval=32, offset=0,
                                      detailed_warming=warming)
        engine = SmartsEngine(machine=machine_8way, measure_energy=False)
        serial = engine.run(micro.program, plan, length)
        restored = engine.run(micro.program, plan, length, checkpoints=ckpt)
        assert restored.units == serial.units
        assert restored.checkpoint_restores > 0
        assert restored.instructions_fastforwarded == 0

    def test_get_or_build_aligns_to_recommended_warming(self, store, micro,
                                                        machine_8way):
        ckpt = store.get_or_build(micro.program, machine_8way, 25)
        chunk = 25 * ckpt.stride
        residue = (-recommended_warming(machine_8way)) % chunk
        assert residue != 0    # the 8-way W is off this grid
        assert any(snap.position % chunk == residue
                   for snap in ckpt.snapshots)

    def test_alignment_is_exact_for_offset_zero_only_grids(self, micro,
                                                           machine_8way):
        """Sanity: a misaligned interval still restores correctly (just
        with a nonzero residual), so alignment is purely an optimization."""
        warming = recommended_warming(machine_8way)
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25,
                                 warm_align=warming)
        plan = SystematicSamplingPlan(unit_size=25, interval=30, offset=1,
                                      detailed_warming=warming)
        engine = SmartsEngine(machine=machine_8way, measure_energy=False)
        serial = engine.run(micro.program, plan, 15_000)
        restored = engine.run(micro.program, plan, 15_000, checkpoints=ckpt)
        assert restored.units == serial.units
        assert restored.checkpoint_restores > 0
