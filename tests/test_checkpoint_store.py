"""Checkpoint store: build, persist, restore semantics, invalidation.

The regression test this file exists for: a checkpoint set built for one
machine geometry must *never* be restored after the geometry changes —
a modified cache/TLB/predictor shape maps to a different store key, the
stale set is reported with a :class:`StaleCheckpointWarning`, and a
fresh build produces exactly the estimates a from-zero run produces.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.checkpoint import (
    CheckpointStore,
    StaleCheckpointWarning,
    build_checkpoints,
    machine_warm_fingerprint,
    program_fingerprint,
)
from repro.config.machines import CacheConfig
from repro.core.sampling import SystematicSamplingPlan
from repro.core.smarts import SmartsEngine
from repro.detailed.state import MicroarchState
from repro.functional.simulator import FunctionalCore


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


@pytest.fixture(scope="module")
def plan():
    return SystematicSamplingPlan.for_sample_size(
        benchmark_length=15_000, unit_size=25, target_sample_size=40,
        detailed_warming=50)


def shrunk_l1d(machine):
    """The same machine with a halved, direct-mapped L1D."""
    return replace(machine, l1d=CacheConfig(2 * 1024, 1, block_bytes=32))


# ----------------------------------------------------------------------
# Build and restore mechanics
# ----------------------------------------------------------------------
class TestBuildAndRestore:
    def test_build_records_length_and_grid(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25,
                                 stride=4)
        chunk = 25 * 4
        assert ckpt.benchmark_length > 0
        assert len(ckpt.snapshots) == ckpt.benchmark_length // chunk
        assert [s.position for s in ckpt.snapshots] == [
            chunk * (i + 1) for i in range(len(ckpt.snapshots))]

    def test_restore_reproduces_functional_state(self, micro, machine_8way):
        """Restoring then executing equals executing from zero."""
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        target = ckpt.snapshots[5].position + 37  # off-grid position

        reference = FunctionalCore(micro.program)
        reference.run(target)

        core = FunctionalCore(micro.program)
        micro_state = MicroarchState(machine_8way)
        index = ckpt.restore_point(target)
        skipped = ckpt.restore_into(index, core, micro_state)
        assert skipped == ckpt.snapshots[index].position
        core.run(target - core.instructions_retired)

        assert core.instructions_retired == reference.instructions_retired
        assert core.state == reference.state

    def test_restore_refuses_backward_jumps(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        core = FunctionalCore(micro.program)
        core.run(ckpt.snapshots[3].position + 1)
        with pytest.raises(ValueError, match="backwards"):
            ckpt.restore_into(3, core, MicroarchState(machine_8way))

    def test_restore_point_bounds(self, micro, machine_8way):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        first = ckpt.snapshots[0].position
        assert ckpt.restore_point(first - 1) is None
        assert ckpt.restore_point(first) == 0
        assert ckpt.restore_point(ckpt.benchmark_length * 2) == (
            len(ckpt.snapshots) - 1)

    def test_roundtrip_through_disk(self, store, micro, machine_8way):
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        store.put(built, micro.program, machine_8way)
        loaded = store.get(micro.program, machine_8way, unit_size=25)
        assert loaded is not None
        assert loaded.benchmark_length == built.benchmark_length
        assert [s.position for s in loaded.snapshots] == [
            s.position for s in built.snapshots]
        assert loaded.snapshots[0].micro == built.snapshots[0].micro

    def test_get_or_build_builds_once(self, store, micro, machine_8way):
        first = store.get_or_build(micro.program, machine_8way, unit_size=25)
        path = store.path_for(micro.program, machine_8way, 25)
        stamp = path.stat().st_mtime_ns
        again = store.get_or_build(micro.program, machine_8way, unit_size=25)
        assert path.stat().st_mtime_ns == stamp
        assert again.benchmark_length == first.benchmark_length


# ----------------------------------------------------------------------
# Invalidation (the regression this file guards)
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_geometry_change_changes_fingerprint(self, machine_8way):
        assert (machine_warm_fingerprint(shrunk_l1d(machine_8way))
                != machine_warm_fingerprint(machine_8way))

    def test_timing_change_keeps_fingerprint(self, machine_8way):
        """Latency/width-only changes reuse the same warm checkpoints."""
        retimed = replace(machine_8way, mem_latency=250, l2_latency=20,
                          commit_width=4, ruu_size=64)
        assert (machine_warm_fingerprint(retimed)
                == machine_warm_fingerprint(machine_8way))

    @pytest.mark.filterwarnings(
        "ignore::repro.checkpoint.StaleCheckpointWarning")
    def test_modified_geometry_never_restores_stale_snapshot(
            self, store, micro, machine_8way, plan):
        """Cache-geometry change: warn, rebuild, and match a cold run."""
        store.get_or_build(micro.program, machine_8way, unit_size=25)

        modified = shrunk_l1d(machine_8way)
        with pytest.warns(StaleCheckpointWarning):
            missed = store.get(micro.program, modified, unit_size=25)
        assert missed is None

        rebuilt = store.get_or_build(micro.program, modified, unit_size=25)
        assert rebuilt.machine_hash == machine_warm_fingerprint(modified)

        engine = SmartsEngine(machine=modified, measure_energy=False)
        serial = engine.run(micro.program, plan, 15_000)
        restored = engine.run(micro.program, plan, 15_000,
                              checkpoints=rebuilt)
        assert restored.units == serial.units
        assert restored.checkpoint_restores > 0

    def test_engine_rejects_mismatched_set(self, micro, machine_8way,
                                           machine_16way, plan):
        ckpt = build_checkpoints(micro.program, machine_8way, unit_size=25)
        engine = SmartsEngine(machine=machine_16way, measure_energy=False)
        with pytest.raises(ValueError, match="different program or machine"):
            engine.run(micro.program, plan, 15_000, checkpoints=ckpt)

    def test_program_change_changes_fingerprint(self, micro):
        from repro.workloads import get_benchmark

        other = get_benchmark("gzip.syn", scale=0.05).program
        assert program_fingerprint(other) != program_fingerprint(micro.program)

    def test_corrupt_file_is_a_miss(self, store, micro, machine_8way):
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        path = store.put(built, micro.program, machine_8way)
        path.write_bytes(b"not a checkpoint")
        assert store.get(micro.program, machine_8way, unit_size=25) is None


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_entries_lists_metadata(self, store, micro, machine_8way,
                                    machine_16way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        store.get_or_build(micro.program, machine_16way, unit_size=25)
        rows = store.entries()
        assert len(rows) == 2
        assert {row["machine_hash"] for row in rows} == {
            machine_warm_fingerprint(machine_8way),
            machine_warm_fingerprint(machine_16way)}
        for row in rows:
            assert row["benchmark"] == micro.program.name
            assert row["snapshots"] > 0
            assert row["size_bytes"] > 0

    def test_gc_removes_stale_versions_and_tmp(self, store, micro,
                                               machine_8way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        stale = store.directory / "old--deadbeef--mfeed--u25--v0.ckpt"
        stale.write_bytes(b"stale")
        leftover = store.directory / "partial.tmp"
        leftover.write_bytes(b"tmp")
        removed = store.gc()
        assert stale in removed and leftover in removed
        assert store.get(micro.program, machine_8way, unit_size=25) is not None

    def test_gc_all(self, store, micro, machine_8way):
        store.get_or_build(micro.program, machine_8way, unit_size=25)
        store.gc(remove_all=True)
        assert list(store.directory.glob("*.ckpt")) == []

    def test_disabled_store_is_inert(self, tmp_path, micro, machine_8way):
        disabled = CheckpointStore(tmp_path / "never", enabled=False)
        built = build_checkpoints(micro.program, machine_8way, unit_size=25)
        disabled.put(built, micro.program, machine_8way)
        assert not (tmp_path / "never").exists()
        assert disabled.get(micro.program, machine_8way, 25) is None
