"""Unit tests for the program builder and finalized programs."""

import pytest

from repro.isa import Instruction, Opcode, Program, ProgramBuilder, ProgramError
from repro.isa.builder import resolve_register


class TestResolveRegister:
    def test_integer_names(self):
        assert resolve_register("r0") == 0
        assert resolve_register("r17") == 17

    def test_fp_names(self):
        assert resolve_register("f0") == 32
        assert resolve_register("f3") == 35

    def test_passthrough_int(self):
        assert resolve_register(12) == 12

    @pytest.mark.parametrize("bad", ["x3", "r", "rx", "", "f-1"])
    def test_bad_names(self, bad):
        with pytest.raises(ValueError):
            resolve_register(bad)


class TestProgramBuilder:
    def test_label_resolution(self):
        b = ProgramBuilder("loop")
        b.addi("r1", "r0", 3)
        b.label("top")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "top")
        b.halt()
        program = b.build()
        branch = program.instructions[2]
        assert branch.target == 1  # resolved to the label's index

    def test_undefined_label_raises(self):
        b = ProgramBuilder("bad")
        b.jump("nowhere")
        b.halt()
        with pytest.raises(ProgramError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder("bad")
        b.label("x")
        b.nop()
        with pytest.raises(ProgramError):
            b.label("x")

    def test_set_entry(self):
        b = ProgramBuilder("entry")
        b.nop()
        b.label("main")
        b.halt()
        b.set_entry("main")
        program = b.build()
        assert program.entry == 1

    def test_set_entry_undefined_label(self):
        b = ProgramBuilder("entry")
        b.nop()
        b.halt()
        b.set_entry("missing")
        with pytest.raises(ProgramError):
            b.build()

    def test_data_block_layout(self):
        b = ProgramBuilder("data")
        b.data_block(0x100, [1, 2, 3])
        b.halt()
        program = b.build()
        assert program.data == {0x100: 1, 0x108: 2, 0x110: 3}

    def test_emitted_instruction_indices(self):
        b = ProgramBuilder("idx")
        assert b.next_index == 0
        first = b.addi("r1", "r0", 1)
        second = b.nop()
        assert (first, second) == (0, 1)


class TestProgram:
    def _simple(self):
        return [
            Instruction(Opcode.ADDI, rd=1, rs1=0, imm=1),
            Instruction(Opcode.BNE, rs1=1, rs2=0, target=0),
            Instruction(Opcode.HALT),
        ]

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="empty", instructions=[])

    def test_bad_entry_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="bad", instructions=self._simple(), entry=99)

    def test_unresolved_target_rejected(self):
        instructions = [Instruction(Opcode.JUMP, target="label"),
                        Instruction(Opcode.HALT)]
        with pytest.raises(ProgramError):
            Program(name="bad", instructions=instructions)

    def test_out_of_range_target_rejected(self):
        instructions = [Instruction(Opcode.JUMP, target=9),
                        Instruction(Opcode.HALT)]
        with pytest.raises(ProgramError):
            Program(name="bad", instructions=instructions)

    def test_basic_block_leaders(self):
        program = Program(name="bb", instructions=self._simple())
        # Entry (0), branch target (0), instruction after branch (2).
        assert program.basic_block_leaders() == [0, 2]

    def test_basic_block_map_is_dense(self):
        program = Program(name="bb", instructions=self._simple())
        block_of = program.basic_block_map()
        assert set(block_of) == {0, 1, 2}
        assert block_of[0] == block_of[1]
        assert block_of[2] == block_of[1] + 1

    def test_describe_mentions_name(self):
        program = Program(name="bb", instructions=self._simple())
        assert "bb" in program.describe()

    def test_len(self):
        program = Program(name="bb", instructions=self._simple())
        assert len(program) == 3
        assert program.static_size == 3
