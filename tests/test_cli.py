"""Tests for the command line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(autouse=True)
def isolated_run_cache(tmp_path, monkeypatch):
    """Keep CLI runs out of the repository's persistent .run_cache."""
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "run_cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "gzip.syn"])
        assert args.benchmark == "gzip.syn"
        assert args.machine == "8-way"
        assert args.metric == "cpi"
        assert args.n_init == 300

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "not-a-benchmark"])

    def test_experiment_choices_cover_all_tables_and_figures(self):
        expected = {"table3", "table4", "table5", "table6",
                    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "ablation", "adaptive_vs_two_round"}
        assert set(EXPERIMENTS) == expected

    def test_study_run_workers_flag(self):
        args = build_parser().parse_args(["study", "run", "table3",
                                          "--workers", "2"])
        assert args.workers == 2
        assert build_parser().parse_args(
            ["study", "run", "table3"]).workers is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip.syn" in out and "mcf.syn" in out

    def test_estimate_small_run(self, capsys):
        code = main([
            "estimate", "gzip.syn", "--scale", "0.05", "--n-init", "40",
            "--epsilon", "0.5", "--rounds", "1", "--unit-size", "25",
            "--warming", "50", "--validate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI estimate" in out
        assert "confidence interval" in out
        assert "actual error" in out

    def test_estimate_epi_without_functional_warming(self, capsys):
        code = main([
            "estimate", "mcf.syn", "--scale", "0.03", "--metric", "epi",
            "--n-init", "30", "--epsilon", "0.9", "--rounds", "1",
            "--unit-size", "25", "--warming", "25", "--no-functional-warming",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EPI estimate" in out
        assert "detailed-only" in out

    def test_reference(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["reference", "gzip.syn", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "instructions" in out

    def test_simpoint(self, capsys):
        code = main(["simpoint", "gzip.syn", "--scale", "0.05",
                     "--interval-size", "1000", "--max-clusters", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI estimate" in out
        assert "clusters" in out

    def test_experiment_table3(self, capsys):
        code = main(["experiment", "table3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RUU/LSQ" in out


class TestJsonOutput:
    def test_estimate_json_is_runresult_payload(self, capsys):
        code = main([
            "estimate", "gzip.syn", "--scale", "0.05", "--n-init", "40",
            "--epsilon", "0.5", "--rounds", "1", "--unit-size", "25",
            "--warming", "50", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["benchmark"] == "gzip.syn"
        assert payload["spec"]["strategy"]["name"] == "systematic"
        assert payload["estimate_mean"] > 0
        assert payload["sample_size"] >= 40
        assert isinstance(payload["units"], list)
        # The payload round-trips through the RunResult contract.
        from repro.api import RunResult
        result = RunResult.from_dict(payload)
        assert result.estimate_mean == payload["estimate_mean"]

    def test_estimate_json_with_validation_still_roundtrips(self, capsys):
        code = main([
            "estimate", "gzip.syn", "--scale", "0.05", "--n-init", "40",
            "--epsilon", "0.5", "--rounds", "1", "--unit-size", "25",
            "--warming", "50", "--json", "--validate",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "validation" in payload
        from repro.api import RunResult
        result = RunResult.from_dict(payload)  # extra key tolerated
        assert result.estimate_mean == payload["estimate_mean"]

    def test_experiment_json(self, capsys):
        code = main(["experiment", "table3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table3"
        assert "report" not in payload["data"]
        assert payload["data"]["rows"]


class TestSweep:
    def test_sweep_table_output(self, capsys):
        code = main([
            "sweep", "--benchmarks", "gzip.syn,mcf.syn", "--scale", "0.05",
            "--epsilon", "0.5", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gzip.syn" in out and "mcf.syn" in out
        assert "Sweep" in out

    def test_sweep_json_output(self, capsys):
        code = main([
            "sweep", "--benchmarks", "gzip.syn", "--scale", "0.05",
            "--epsilon", "0.5", "--strategy", "random", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["spec"]["strategy"]["name"] == "random"


class TestStudyCommands:
    def test_study_ls_lists_registry(self, capsys):
        assert main(["study", "ls"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table3" in out
        assert "figure6_cpi_estimates" in out  # legacy shim column

    def test_study_ls_json(self, capsys):
        assert main(["study", "ls", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["studies"]}
        assert names == set(EXPERIMENTS)
        fig6 = next(r for r in payload["studies"] if r["name"] == "fig6")
        assert fig6["has_grid"] is True

    def test_study_run_prints_report(self, capsys):
        assert main(["study", "run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "RUU/LSQ" in out

    def test_study_run_json(self, capsys):
        assert main(["study", "run", "table3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["study"] == "table3"
        assert payload["rows"][0]["parameter"] == "RUU/LSQ"
        assert "report" not in payload["data"]

    def test_study_report_csv(self, capsys):
        assert main(["study", "report", "table3"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "parameter,8-way,16-way"

    def test_study_report_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "rows.json"
        assert main(["study", "report", "table3", "--format", "json",
                     "--output", str(target)]) == 0
        rows = json.loads(target.read_text())
        assert rows[0]["parameter"] == "RUU/LSQ"
        assert "wrote" in capsys.readouterr().out

    def test_study_run_with_workers_override(self, capsys):
        """--workers threads through run_study (inert for gridless
        studies, but the invocation path must accept it)."""
        assert main(["study", "run", "table3", "--workers", "2"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_study_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "run", "not-a-study"])


class TestCheckpointBatchBuild:
    @pytest.fixture(autouse=True)
    def isolated_ckpt_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))

    def test_batch_build_suite_and_machines(self, capsys):
        code = main(["checkpoint", "build", "--benchmarks", "micro.syn",
                     "--machines", "8-way,16-way", "--unit-size", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Checkpoint batch build: 2 sets" in out
        assert out.count("micro.syn") == 2

    def test_single_positional_build_keeps_detailed_output(self, capsys):
        code = main(["checkpoint", "build", "micro.syn",
                     "--unit-size", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshots       :" in out

    def test_positional_and_batch_flags_conflict(self, capsys):
        code = main(["checkpoint", "build", "micro.syn",
                     "--benchmarks", "micro.syn"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_benchmark_rejected(self, capsys):
        assert main(["checkpoint", "build"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_batch_benchmark_rejected(self, capsys):
        assert main(["checkpoint", "build", "--benchmarks", "nope.syn"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_unknown_batch_machine_rejected(self, capsys):
        code = main(["checkpoint", "build", "--benchmarks", "micro.syn",
                     "--machines", "32-way"])
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err


class TestStoreCommands:
    @pytest.fixture(autouse=True)
    def isolated_artifact_store(self, tmp_path, monkeypatch):
        for var in ("REPRO_RUN_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                    "REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))

    def _populate(self):
        from repro.store import ArtifactStore
        from repro.api.executor import CACHE_VERSION
        from repro.checkpoint import CHECKPOINT_VERSION

        store = ArtifactStore()
        store.put("result", f"a--v{CACHE_VERSION}.json", b"{}",
                  checksum=False)
        store.put("result", "stale--v0.json", b"{}", checksum=False)
        self.ckpt_name = f"c--v{CHECKPOINT_VERSION}.ckpt"
        store.put("checkpoint", self.ckpt_name, b"payload")
        return store

    def test_store_stats_table(self, capsys):
        self._populate()
        assert main(["store", "stats"]) == 0
        out = capsys.readouterr().out
        assert "Artifact store:" in out
        for namespace in ("result", "checkpoint", "bbv", "reftrace"):
            assert namespace in out

    def test_store_stats_json(self, capsys):
        self._populate()
        assert main(["store", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["namespaces"]["result"]["files"] == 2
        assert payload["namespaces"]["result"]["entries"] == 1

    def test_store_ls(self, capsys):
        self._populate()
        assert main(["store", "ls"]) == 0
        out = capsys.readouterr().out
        assert self.ckpt_name in out
        assert main(["store", "ls", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {e["namespace"] for e in payload["artifacts"]} \
            == {"result", "checkpoint"}

    def test_store_gc_dry_run_then_real(self, capsys):
        store = self._populate()
        stale = store.path("result", "stale--v0.json")
        assert main(["store", "gc", "--dry-run"]) == 0
        assert "would remove 1 file(s)" in capsys.readouterr().out
        assert stale.exists()
        assert main(["store", "gc"]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert not stale.exists()

    def test_store_gc_namespace_filter(self, capsys):
        self._populate()
        assert main(["store", "gc", "--namespaces", "checkpoint",
                     "--dry-run"]) == 0
        assert "would remove 0 file(s)" in capsys.readouterr().out

    def test_store_gc_unknown_namespace_rejected(self, capsys):
        assert main(["store", "gc", "--namespaces", "nope"]) == 2
        assert "unknown namespace" in capsys.readouterr().err

    def test_checkpoint_gc_dry_run_delegates_to_store(self, capsys):
        self._populate()
        assert main(["checkpoint", "gc", "--all", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out and self.ckpt_name in out
        assert main(["store", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["namespaces"]["checkpoint"]["files"] == 1


class TestWorkerCommand:
    def test_worker_exits_idle_and_reports(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        assert main(["worker", "--max-idle", "0.1", "--poll", "0.02"]) == 0
        assert "worker exiting after 0 job(s)" in capsys.readouterr().out

    def test_worker_flags_match_queue_backend_spawn(self):
        # QueueBackend spawns `repro worker --queue-dir ... --poll ...
        # --lease ... --max-idle ...`; the parser must accept that shape.
        args = build_parser().parse_args(
            ["worker", "--queue-dir", "/tmp/q", "--poll", "0.1",
             "--lease", "30.0", "--max-idle", "20"])
        assert args.queue_dir == "/tmp/q"
        assert args.max_idle == 20.0
        assert args.max_jobs is None


class TestBackendFlags:
    def test_sweep_accepts_backend(self):
        args = build_parser().parse_args(["sweep", "--backend", "serial"])
        assert args.backend == "serial"
        assert build_parser().parse_args(["sweep"]).backend is None

    def test_serve_accepts_backend(self):
        args = build_parser().parse_args(["serve", "--backend", "queue"])
        assert args.backend == "queue"

    def test_sweep_with_explicit_serial_backend(self, capsys, monkeypatch,
                                                tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
        code = main(["sweep", "--benchmarks", "gzip.syn", "--scale", "0.05",
                     "--backend", "serial", "--epsilon", "0.5"])
        assert code == 0
        assert "gzip.syn" in capsys.readouterr().out
