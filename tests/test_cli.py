"""Tests for the command line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "gzip.syn"])
        assert args.benchmark == "gzip.syn"
        assert args.machine == "8-way"
        assert args.metric == "cpi"
        assert args.n_init == 300

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "not-a-benchmark"])

    def test_experiment_choices_cover_all_tables_and_figures(self):
        expected = {"table3", "table4", "table5", "table6",
                    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}
        assert set(EXPERIMENTS) == expected


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip.syn" in out and "mcf.syn" in out

    def test_estimate_small_run(self, capsys):
        code = main([
            "estimate", "gzip.syn", "--scale", "0.05", "--n-init", "40",
            "--epsilon", "0.5", "--rounds", "1", "--unit-size", "25",
            "--warming", "50", "--validate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI estimate" in out
        assert "confidence interval" in out
        assert "actual error" in out

    def test_estimate_epi_without_functional_warming(self, capsys):
        code = main([
            "estimate", "mcf.syn", "--scale", "0.03", "--metric", "epi",
            "--n-init", "30", "--epsilon", "0.9", "--rounds", "1",
            "--unit-size", "25", "--warming", "25", "--no-functional-warming",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EPI estimate" in out
        assert "detailed-only" in out

    def test_reference(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["reference", "gzip.syn", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "instructions" in out

    def test_simpoint(self, capsys):
        code = main(["simpoint", "gzip.syn", "--scale", "0.05",
                     "--interval-size", "1000", "--max-clusters", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI estimate" in out
        assert "clusters" in out

    def test_experiment_table3(self, capsys):
        code = main(["experiment", "table3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RUU/LSQ" in out
