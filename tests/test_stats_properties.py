"""Property-based statistical test layer for core.stats / core.estimates.

Two kinds of guarantees are checked:

* algebraic properties, via hypothesis — shift/scale equivariance of the
  sample statistics, monotonicity and duality of the confidence-interval
  machinery, consistency of the estimate dataclasses; and
* *statistical correctness*, via seeded Monte Carlo — confidence
  intervals must achieve (approximately) their nominal coverage on
  synthetic populations with known mean and variance, including sample
  sizes chosen by ``required_sample_size`` and the finite-population
  correction.

Everything is deterministic (fixed seeds, fixed hypothesis profiles) and
tolerance-based; nothing asserts wall-clock behaviour (single-core
container).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimates import MetricEstimate, SmartsRunResult, UnitRecord
from repro.core.stats import (
    CONFIDENCE_95,
    CONFIDENCE_997,
    achieved_confidence_interval,
    achieved_confidence_level,
    coefficient_of_variation,
    intraclass_correlation,
    required_sample_size,
    sample_statistics,
    sampling_bias,
    systematic_sample_means,
    z_score,
)

settings.register_profile("repro-stats", deadline=None, max_examples=60)
settings.load_profile("repro-stats")

#: Well-behaved measurement values (CPI-like magnitudes).
values_lists = st.lists(
    st.floats(min_value=0.05, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=64)


# ----------------------------------------------------------------------
# Algebraic properties (hypothesis)
# ----------------------------------------------------------------------
class TestSampleStatisticsProperties:
    @given(values_lists)
    def test_matches_numpy(self, values):
        stats = sample_statistics(values)
        assert stats.n == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values, ddof=1))

    @given(values_lists,
           st.floats(min_value=0.25, max_value=8.0),
           st.floats(min_value=-10.0, max_value=10.0))
    def test_shift_and_scale_equivariance(self, values, scale, shift):
        base = sample_statistics(values)
        moved = sample_statistics([scale * v + shift for v in values])
        assert moved.mean == pytest.approx(scale * base.mean + shift,
                                           rel=1e-9, abs=1e-9)
        assert moved.std == pytest.approx(scale * base.std,
                                          rel=1e-7, abs=1e-9)

    @given(values_lists)
    def test_cv_is_scale_invariant(self, values):
        base = coefficient_of_variation(values)
        scaled = coefficient_of_variation([3.0 * v for v in values])
        assert scaled == pytest.approx(base, rel=1e-7, abs=1e-12)

    @given(st.floats(min_value=0.05, max_value=50.0), st.integers(2, 1000))
    def test_constant_sample_has_zero_width_interval(self, value, n):
        # numpy's two-pass std leaves ~1e-16 of rounding residue on
        # constant samples, so "zero width" means zero to float precision.
        stats = sample_statistics([value] * n)
        assert stats.coefficient_of_variation == pytest.approx(0.0, abs=1e-12)
        assert stats.confidence_interval(CONFIDENCE_997) == pytest.approx(
            0.0, abs=1e-12)


class TestConfidenceMachineryProperties:
    @given(st.floats(min_value=0.5, max_value=0.999))
    def test_z_score_matches_normal_quantile(self, confidence):
        z = z_score(confidence)
        # Two-sided: P(|Z| <= z) == confidence.
        from statistics import NormalDist

        assert 2 * NormalDist().cdf(z) - 1 == pytest.approx(confidence,
                                                            abs=1e-9)

    def test_z_score_monotonic_and_paper_values(self):
        assert z_score(0.95) == pytest.approx(1.96, abs=0.01)
        assert z_score(0.997) == pytest.approx(2.97, abs=0.01)
        grid = [z_score(c) for c in (0.5, 0.8, 0.9, 0.95, 0.99, 0.997)]
        assert grid == sorted(grid)

    @given(st.floats(min_value=0.01, max_value=3.0), st.integers(1, 10_000))
    def test_interval_shrinks_as_sqrt_n(self, cv, n):
        wide = achieved_confidence_interval(cv, n)
        narrow = achieved_confidence_interval(cv, 4 * n)
        assert narrow == pytest.approx(wide / 2.0, rel=1e-9)

    @given(st.floats(min_value=0.01, max_value=3.0),
           st.floats(min_value=0.005, max_value=0.5),
           st.sampled_from([CONFIDENCE_95, CONFIDENCE_997]))
    def test_required_sample_size_achieves_target(self, cv, eps, confidence):
        n = required_sample_size(cv, eps, confidence)
        assert achieved_confidence_interval(cv, n, confidence) <= eps + 1e-12

    @given(st.floats(min_value=0.01, max_value=3.0),
           st.floats(min_value=0.005, max_value=0.5),
           st.integers(2, 100_000))
    def test_finite_population_correction_bounds(self, cv, eps, population):
        uncorrected = required_sample_size(cv, eps)
        corrected = required_sample_size(cv, eps, population_size=population)
        assert corrected <= uncorrected
        assert corrected <= population

    @given(st.floats(min_value=0.01, max_value=3.0), st.integers(2, 10_000),
           st.sampled_from([CONFIDENCE_95, CONFIDENCE_997]))
    def test_level_interval_duality(self, cv, n, confidence):
        epsilon = achieved_confidence_interval(cv, n, confidence)
        assert achieved_confidence_level(cv, n, epsilon) == pytest.approx(
            confidence, abs=1e-9)


class TestEstimateDataclassProperties:
    @given(values_lists)
    def test_metric_estimate_mirrors_sample_statistics(self, values):
        estimate = MetricEstimate.from_values("cpi", values,
                                              population_size=10_000)
        stats = sample_statistics(values)
        assert estimate.mean == stats.mean
        assert estimate.sample_size == stats.n
        assert (estimate.coefficient_of_variation
                == stats.coefficient_of_variation)
        epsilon = estimate.confidence_interval(CONFIDENCE_95)
        assert estimate.meets(epsilon * 1.000001, CONFIDENCE_95)
        if epsilon > 0:
            assert not estimate.meets(epsilon * 0.999, CONFIDENCE_95)

    @given(st.integers(1, 1000), st.integers(0, 100_000),
           st.floats(min_value=0.0, max_value=1e6))
    def test_unit_record_ratios(self, instructions, cycles, energy):
        unit = UnitRecord(index=0, instructions=instructions, cycles=cycles,
                          energy=energy)
        assert unit.cpi == pytest.approx(cycles / instructions)
        assert unit.epi == pytest.approx(energy / instructions)
        empty = UnitRecord(index=0, instructions=0, cycles=5, energy=1.0)
        assert empty.cpi == 0.0 and empty.epi == 0.0

    @given(st.lists(st.tuples(st.integers(1, 200), st.integers(1, 2000)),
                    min_size=2, max_size=40))
    def test_run_result_cpi_is_unit_mean(self, pairs):
        units = [UnitRecord(index=i, instructions=instr, cycles=cyc,
                            energy=0.0)
                 for i, (instr, cyc) in enumerate(pairs)]
        run = SmartsRunResult(
            benchmark="b", machine="m", unit_size=50, interval=10, offset=0,
            detailed_warming=0, functional_warming=True, units=units,
            benchmark_length=50 * 10 * len(units))
        expected = sample_statistics([u.cpi for u in units])
        assert run.cpi.mean == pytest.approx(expected.mean)
        assert run.cpi.coefficient_of_variation == pytest.approx(
            expected.coefficient_of_variation)


# ----------------------------------------------------------------------
# Monte Carlo coverage (seeded, tolerance-based)
# ----------------------------------------------------------------------
def empirical_coverage(population: np.ndarray, sample_size: int,
                       confidence: float, replications: int,
                       seed: int, without_replacement: bool = False) -> float:
    """Fraction of replications whose CI covers the true population mean."""
    rng = np.random.default_rng(seed)
    true_mean = float(population.mean())
    covered = 0
    for _ in range(replications):
        sample = rng.choice(population, size=sample_size,
                            replace=not without_replacement)
        stats = sample_statistics(sample)
        half_width = stats.confidence_interval(confidence) * abs(stats.mean)
        if abs(stats.mean - true_mean) <= half_width:
            covered += 1
    return covered / replications


@pytest.fixture(scope="module")
def populations():
    rng = np.random.default_rng(20030609)  # ISCA'03 vintage, fixed forever
    return {
        "normal": rng.normal(2.0, 0.5, size=40_000),
        "lognormal": rng.lognormal(mean=0.5, sigma=0.5, size=40_000),
        "uniform": rng.uniform(0.5, 3.5, size=40_000),
        "bimodal": np.concatenate([rng.normal(1.0, 0.1, size=20_000),
                                   rng.normal(3.0, 0.3, size=20_000)]),
    }


class TestConfidenceIntervalCoverage:
    @pytest.mark.parametrize("shape", ["normal", "lognormal", "uniform",
                                       "bimodal"])
    def test_nominal_coverage_at_95(self, populations, shape):
        coverage = empirical_coverage(populations[shape], sample_size=100,
                                      confidence=CONFIDENCE_95,
                                      replications=1500, seed=7)
        # z-based (not t-based) intervals on skewed populations run a
        # touch below nominal; ±3% is the honest band at n=100.
        assert abs(coverage - CONFIDENCE_95) < 0.03, (shape, coverage)

    @pytest.mark.parametrize("shape", ["normal", "uniform"])
    def test_nominal_coverage_at_997(self, populations, shape):
        coverage = empirical_coverage(populations[shape], sample_size=100,
                                      confidence=CONFIDENCE_997,
                                      replications=1500, seed=11)
        assert coverage >= CONFIDENCE_997 - 0.012, (shape, coverage)

    def test_tuned_sample_size_reaches_target_interval(self, populations):
        """The paper's tuning equation: n from the measured CV achieves
        the requested ±epsilon at the requested confidence."""
        population = populations["bimodal"]
        true_mean = float(population.mean())
        cv = float(population.std() / population.mean())
        epsilon = 0.05
        n = required_sample_size(cv, epsilon, CONFIDENCE_95)
        rng = np.random.default_rng(13)
        hits = sum(
            abs(float(rng.choice(population, size=n).mean()) - true_mean)
            <= epsilon * true_mean
            for _ in range(1200))
        assert hits / 1200 >= CONFIDENCE_95 - 0.03

    def test_finite_population_correction_preserves_coverage(self,
                                                             populations):
        """FPC shrinks n; sampling *without replacement* keeps coverage."""
        rng = np.random.default_rng(17)
        population = rng.permutation(populations["normal"])[:2_000]
        true_mean = float(population.mean())
        cv = float(population.std() / population.mean())
        epsilon = 0.03
        n_full = required_sample_size(cv, epsilon, CONFIDENCE_95)
        n_fpc = required_sample_size(cv, epsilon, CONFIDENCE_95,
                                     population_size=len(population))
        assert n_fpc < n_full
        hits = 0
        for _ in range(1200):
            sample = rng.choice(population, size=n_fpc, replace=False)
            if abs(float(sample.mean()) - true_mean) <= epsilon * true_mean:
                hits += 1
        assert hits / 1200 >= CONFIDENCE_95 - 0.03


class TestSystematicSamplingDiagnostics:
    def test_offset_means_average_to_population_mean(self):
        rng = np.random.default_rng(23)
        population = rng.normal(2.0, 0.4, size=12_000)  # 12000 = 40 * 300
        means = systematic_sample_means(population, interval=40)
        assert float(means.mean()) == pytest.approx(float(population.mean()),
                                                    rel=1e-12)
        assert sampling_bias(population, interval=40) == pytest.approx(
            0.0, abs=1e-12)

    def test_iid_population_is_homogeneous(self):
        """δ ≈ 0 for an i.i.d. population: systematic ≈ random sampling."""
        rng = np.random.default_rng(29)
        population = rng.normal(2.0, 0.4, size=12_000)
        delta = intraclass_correlation(population, interval=40)
        assert abs(delta) < 5e-3

    def test_periodic_population_is_flagged(self):
        """A population periodic at the sampling interval has |δ| >> 0."""
        period = np.tile(np.linspace(1.0, 3.0, 40), 300)
        delta = intraclass_correlation(period, interval=40)
        assert delta > 0.5
