"""Tests for the kernel library and the synthetic benchmark suite."""

import random

import pytest

from repro.functional import FunctionalCore, measure_program_length
from repro.isa import ProgramBuilder
from repro.workloads import (
    KERNELS,
    SUITE_NAMES,
    DataAllocator,
    KernelSpec,
    PhaseSpec,
    build_program,
    get_benchmark,
    micro_benchmark,
    suite_specs,
)
from repro.workloads.suite import BenchmarkSpec, _spec


class TestDataAllocator:
    def test_disjoint_regions(self):
        alloc = DataAllocator()
        a = alloc.alloc(100)
        b = alloc.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        alloc = DataAllocator(alignment=64)
        alloc.alloc(10)
        b = alloc.alloc(10)
        assert b % 64 == 0


class TestKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_emits_runnable_subroutine(self, name):
        b = ProgramBuilder(f"test_{name}")
        alloc = DataAllocator()
        rng = random.Random(0)
        # Small parameters so every kernel runs quickly.
        params = {
            "stream_sum": {"elems": 32},
            "stream_triad": {"elems": 32},
            "pointer_chase": {"nodes": 32, "spacing": 64, "hops": 32},
            "random_access": {"table_words": 64, "accesses": 32},
            "branchy_walk": {"elems": 32},
            "matmul": {"n": 4},
            "stencil": {"elems": 32},
            "alu_chain": {"iters": 32},
            "divider": {"iters": 8},
            "sort_pass": {"elems": 16, "passes": 1},
            "irregular_chase": {"lists": 2, "min_nodes": 8, "max_nodes": 16,
                                "bursts": 4, "min_hops": 4, "max_hops": 8},
        }[name]
        b.jump("main")
        instance = KERNELS[name](b, f"k_{name}", alloc, rng, **params)
        b.label("main")
        b.jal("r31", instance.label)
        b.halt()
        program = b.build()
        length = measure_program_length(program)
        assert length > 0
        # The emitted estimate should be within 2x of the real count.
        assert 0.4 < length / instance.dynamic_length < 2.5

    def test_random_access_requires_power_of_two_table(self):
        b = ProgramBuilder("bad")
        with pytest.raises(ValueError):
            KERNELS["random_access"](b, "k", DataAllocator(), random.Random(0),
                                     table_words=1000, accesses=8)

    def test_sort_pass_actually_sorts_adjacent_pairs(self):
        b = ProgramBuilder("sorts")
        alloc = DataAllocator()
        rng = random.Random(3)
        b.jump("main")
        instance = KERNELS["sort_pass"](b, "k_sort", alloc, rng,
                                        elems=16, passes=16)
        b.label("main")
        b.jal("r31", instance.label)
        b.halt()
        program = b.build()
        core = FunctionalCore(program)
        core.run_to_completion()
        # Extract the array from memory: it was allocated first, at the
        # allocator's base address.
        base = DataAllocator().alloc(0)
        values = [core.state.memory.get(base + i * 8, 0) for i in range(16)]
        assert values == sorted(values)


class TestSuiteSpecs:
    def test_suite_has_twelve_benchmarks(self):
        assert len(SUITE_NAMES) == 12
        assert len(set(SUITE_NAMES)) == 12

    def test_specs_have_both_categories(self):
        categories = {spec.category for spec in suite_specs()}
        assert categories == {"int", "fp"}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="x", category="weird", description="",
                          phases=(PhaseSpec((KernelSpec("alu_chain"),), 1),))
        with pytest.raises(KeyError):
            KernelSpec("not_a_kernel")
        with pytest.raises(ValueError):
            PhaseSpec((), 1)
        with pytest.raises(ValueError):
            PhaseSpec((KernelSpec("alu_chain"),), 0)

    def test_get_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("spec.notreal")


class TestProgramConstruction:
    def test_scale_changes_dynamic_length(self):
        small = get_benchmark("gzip.syn", scale=0.05)
        large = get_benchmark("gzip.syn", scale=0.1)
        len_small = measure_program_length(small.program)
        len_large = measure_program_length(large.program)
        assert len_large > 1.5 * len_small

    def test_estimated_length_close_to_actual(self):
        benchmark = get_benchmark("gzip.syn", scale=0.05)
        actual = measure_program_length(benchmark.program)
        assert 0.5 < actual / benchmark.estimated_length < 2.0

    def test_determinism_by_seed(self):
        a = get_benchmark("gcc.syn", scale=0.05)
        b = get_benchmark("gcc.syn", scale=0.05)
        assert [str(i) for i in a.program.instructions] == \
            [str(i) for i in b.program.instructions]
        assert a.program.data == b.program.data

    def test_micro_benchmark_is_small(self, micro):
        length = measure_program_length(micro.program)
        assert 5_000 < length < 50_000

    def test_benchmark_has_many_basic_blocks(self, micro):
        assert len(micro.program.basic_block_leaders()) > 10

    def test_custom_spec_build(self):
        spec = _spec(
            "custom.syn", "int", "test",
            [PhaseSpec((KernelSpec("alu_chain", {"iters": 16}),), 2)])
        benchmark = build_program(spec, scale=1.0)
        length = measure_program_length(benchmark.program)
        assert length > 100

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_every_suite_benchmark_builds_and_halts(self, name):
        benchmark = get_benchmark(name, scale=0.02)
        length = measure_program_length(benchmark.program, limit=2_000_000)
        assert length > 1_000
