"""Tests for the SMARTS sampling simulation engine."""

import pytest

from repro.core import SystematicSamplingPlan, run_smarts
from repro.core.smarts import SmartsEngine


class TestFullSampling:
    def test_sampling_every_unit_reproduces_reference_cpi(
            self, micro, machine_8way, micro_reference):
        """With k=1 and no fast-forwarding the engine degenerates to a
        continuous detailed run; its CPI must match the reference."""
        plan = SystematicSamplingPlan(unit_size=25, interval=1,
                                      detailed_warming=0,
                                      functional_warming=False)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions)
        assert result.sample_size == micro_reference.instructions // 25
        assert result.cpi.mean == pytest.approx(micro_reference.cpi, rel=0.01)

    def test_unit_records_align_with_reference_trace(
            self, micro, machine_8way, micro_reference):
        from repro.harness.reference import unit_cpi_trace
        plan = SystematicSamplingPlan(unit_size=25, interval=1,
                                      detailed_warming=0,
                                      functional_warming=False)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions)
        trace = unit_cpi_trace(micro_reference, 25)
        sampled = [u.cpi for u in result.units if u.instructions == 25]
        assert len(sampled) == len(trace)
        # Per-unit values match because both are the same continuous run.
        for measured, reference in zip(sampled[:50], trace[:50]):
            assert measured == pytest.approx(reference, rel=1e-6)


class TestSampledEstimation:
    def test_estimate_close_to_reference_with_warming(
            self, micro, machine_8way, micro_reference):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=100,
            detailed_warming=100, functional_warming=True)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions)
        error = abs(result.cpi.mean - micro_reference.cpi) / micro_reference.cpi
        ci = result.cpi.confidence_interval(0.997)
        assert error < max(2 * ci, 0.10)

    def test_functional_warming_beats_no_warming(
            self, micro, machine_8way, micro_reference):
        """Estimates with functional warming should be no worse than with
        completely stale state (usually much better)."""
        def run(functional_warming, warming):
            plan = SystematicSamplingPlan.for_sample_size(
                benchmark_length=micro_reference.instructions,
                unit_size=25, target_sample_size=80,
                detailed_warming=warming,
                functional_warming=functional_warming)
            result = run_smarts(micro.program, machine_8way, plan,
                                micro_reference.instructions)
            return abs(result.cpi.mean - micro_reference.cpi) / micro_reference.cpi

        error_warm = run(True, 50)
        error_cold = run(False, 0)
        assert error_warm <= error_cold + 0.02

    def test_instruction_accounting(self, micro, machine_8way, micro_reference):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=50,
            detailed_warming=75, functional_warming=True)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions)
        total = (result.instructions_measured
                 + result.instructions_detailed_warming
                 + result.instructions_fastforwarded)
        assert total <= micro_reference.instructions
        assert result.instructions_measured == \
            sum(u.instructions for u in result.units)
        assert 0 < result.detailed_fraction < 1
        assert result.sample_size == len(result.units)

    def test_offset_changes_selected_units(self, micro, machine_8way,
                                           micro_reference):
        length = micro_reference.instructions
        base = dict(unit_size=25, interval=10, detailed_warming=50,
                    functional_warming=True)
        run0 = run_smarts(micro.program, machine_8way,
                          SystematicSamplingPlan(offset=0, **base), length)
        run5 = run_smarts(micro.program, machine_8way,
                          SystematicSamplingPlan(offset=5, **base), length)
        assert [u.index for u in run0.units] != [u.index for u in run5.units]

    def test_epi_measured_when_requested(self, micro, machine_8way,
                                         micro_reference):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=40,
            detailed_warming=50, functional_warming=True)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions, measure_energy=True)
        assert result.epi.mean > 0
        error = abs(result.epi.mean - micro_reference.epi) / micro_reference.epi
        assert error < 0.25

    def test_energy_skipped_when_disabled(self, micro, machine_8way,
                                          micro_reference):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=20,
            detailed_warming=50, functional_warming=True)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions, measure_energy=False)
        assert all(u.energy == 0.0 for u in result.units)

    def test_engine_reusable_across_runs(self, micro, machine_8way,
                                         micro_reference):
        engine = SmartsEngine(machine=machine_8way)
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=30,
            detailed_warming=50, functional_warming=True)
        first = engine.run(micro.program, plan, micro_reference.instructions)
        second = engine.run(micro.program, plan, micro_reference.instructions)
        assert first.cpi.mean == pytest.approx(second.cpi.mean)

    def test_summary_keys(self, micro, machine_8way, micro_reference):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=micro_reference.instructions,
            unit_size=25, target_sample_size=20,
            detailed_warming=25, functional_warming=True)
        result = run_smarts(micro.program, machine_8way, plan,
                            micro_reference.instructions)
        summary = result.summary()
        for key in ("benchmark", "machine", "U", "k", "W", "n", "N", "cpi",
                    "cpi_cv", "cpi_ci_997", "detailed_fraction"):
            assert key in summary
