"""Tests for the ResultSet container: querying, aggregation, export."""

import json

import numpy as np
import pytest

from repro.api import RunResult, RunSpec
from repro.api.resultset import (
    AGGREGATORS,
    ResultSet,
    result_row,
    rows_from_csv,
    rows_to_csv,
)


def make_result(benchmark="gzip.syn", machine="8-way", estimate=1.0,
                ci=0.05, cv=0.1, n=10, rounds=1) -> RunResult:
    spec = RunSpec(benchmark=benchmark, machine=machine)
    return RunResult(
        spec=spec,
        estimate_mean=estimate,
        estimate_cv=cv,
        confidence_interval=ci,
        target_met=ci <= spec.epsilon,
        sample_size=n,
        population_size=100,
        benchmark_length=5000,
        rounds=rounds,
        round_estimates=[{"sample_size": n, "mean": estimate,
                          "cv": cv, "ci": ci}],
    )


@pytest.fixture()
def rs() -> ResultSet:
    return ResultSet([
        make_result("gzip.syn", "8-way", estimate=1.0, ci=0.05, n=10),
        make_result("gzip.syn", "16-way", estimate=0.8, ci=0.10, n=20),
        make_result("mcf.syn", "8-way", estimate=2.0, ci=0.02, n=30),
        make_result("mcf.syn", "16-way", estimate=1.5, ci=0.04, n=40),
    ])


class TestSequence:
    def test_len_iter_getitem(self, rs):
        assert len(rs) == 4
        assert [r.spec.benchmark for r in rs] == \
            ["gzip.syn", "gzip.syn", "mcf.syn", "mcf.syn"]
        assert rs[0].spec.machine == "8-way"

    def test_slice_returns_resultset(self, rs):
        head = rs[:2]
        assert isinstance(head, ResultSet)
        assert len(head) == 2


class TestQuerying:
    def test_filter_by_field(self, rs):
        eight = rs.filter(machine="8-way")
        assert len(eight) == 2
        assert all(r.spec.machine == "8-way" for r in eight)

    def test_filter_by_callable_field(self, rs):
        tight = rs.filter(ci=lambda v: v <= 0.04)
        assert {r.spec.benchmark for r in tight} == {"mcf.syn"}

    def test_filter_by_predicate(self, rs):
        big = rs.filter(lambda r: r.estimate_mean > 1.0)
        assert len(big) == 2

    def test_sorted_by(self, rs):
        by_ci = rs.sorted_by("ci")
        assert by_ci.values("ci") == sorted(rs.values("ci"))
        reverse = rs.sorted_by("ci", reverse=True)
        assert reverse.values("ci") == sorted(rs.values("ci"), reverse=True)

    def test_by_cell(self, rs):
        cells = rs.by_cell()
        assert cells[("8-way", "mcf.syn")].estimate_mean == 2.0
        assert len(cells) == 4

    def test_by_cell_rejects_duplicate_cells(self, rs):
        doubled = ResultSet(list(rs) + [make_result("gzip.syn", "8-way")])
        with pytest.raises(ValueError, match="multiple results"):
            doubled.by_cell()

    def test_groupby_preserves_order_and_membership(self, rs):
        groups = rs.groupby("machine")
        assert list(groups) == [("8-way",), ("16-way",)]
        assert len(groups[("8-way",)]) == 2
        assert len(groups["16-way"]) == 2  # scalar key accepted

    def test_groupby_requires_keys(self, rs):
        with pytest.raises(ValueError):
            rs.groupby()


class TestAggregation:
    def test_aggregate_matches_numpy(self, rs):
        agg = rs.aggregate(mean_ci=("ci", "mean"), worst=("ci", "max"),
                           best=("ci", "min"), total_n=("sample_size", "sum"),
                           count=("ci", "count"), spread=("ci", "std"))
        cis = rs.values("ci")
        assert agg["mean_ci"] == pytest.approx(np.mean(cis))
        assert agg["worst"] == max(cis)
        assert agg["best"] == min(cis)
        assert agg["total_n"] == 100
        assert agg["count"] == 4
        assert agg["spread"] == pytest.approx(np.std(cis))

    def test_aggregate_median_even_and_odd(self, rs):
        assert rs.aggregate(m=("sample_size", "median"))["m"] == 25
        odd = rs[:3]
        assert odd.aggregate(m=("sample_size", "median"))["m"] == 20

    def test_aggregate_accepts_callable(self, rs):
        agg = rs.aggregate(span=("estimate", lambda vs: max(vs) - min(vs)))
        assert agg["span"] == pytest.approx(1.2)

    def test_aggregate_unknown_name_raises(self, rs):
        with pytest.raises(KeyError):
            rs.aggregate(x=("ci", "harmonic"))

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            ResultSet().aggregate(x=("ci", "mean"))

    def test_grouped_aggregate_rows(self, rs):
        rows = rs.groupby("machine").aggregate(mean_ci=("ci", "mean"),
                                               n=("ci", "count"))
        assert rows == [
            {"machine": "8-way", "mean_ci": pytest.approx(0.035), "n": 2},
            {"machine": "16-way", "mean_ci": pytest.approx(0.07), "n": 2},
        ]

    def test_aggregators_registry_is_complete(self):
        for name in ("mean", "median", "min", "max", "sum", "count", "std",
                     "first", "last"):
            assert name in AGGREGATORS


class TestExport:
    def test_rows_are_flat_scalars(self, rs):
        rows = rs.rows()
        assert rows == [result_row(r) for r in rs]
        for row in rows:
            for value in row.values():
                assert isinstance(value, (str, int, float, bool))

    def test_json_round_trip_is_lossless(self, rs):
        clone = ResultSet.from_json(rs.to_json())
        assert len(clone) == len(rs)
        for a, b in zip(rs, clone):
            assert a.to_dict() == b.to_dict()

    def test_csv_round_trip_preserves_rows(self, rs):
        parsed = rows_from_csv(rs.to_csv())
        assert parsed == rs.rows()

    def test_rows_csv_handles_none_and_heterogeneous_columns(self):
        rows = [{"a": 1, "b": None}, {"a": 2.5, "c": "x"}]
        parsed = rows_from_csv(rows_to_csv(rows))
        assert parsed == [{"a": 1, "b": None, "c": None},
                          {"a": 2.5, "b": None, "c": "x"}]

    def test_to_table_renders_columns(self, rs):
        table = rs.to_table(columns=["benchmark", "machine", "estimate"],
                            title="demo")
        assert "demo" in table
        assert "gzip.syn" in table and "16-way" in table
