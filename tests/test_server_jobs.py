"""Queue semantics, job-store persistence, and cache-write hardening.

Worker-blocking tests monkeypatch ``repro.server.jobs.execute_run`` with
event-gated stand-ins so queue-full (429), per-job timeout, and graceful
shutdown are exercised deterministically, without racing on real
simulation timing.
"""

import json
import threading
import time

import pytest

from repro.api import ResultCache, RunSpec, SystematicStrategy, execute_spec
from repro.cli import main
from repro.server import JobRecord, JobStore, ServerConfig, ServerError, create_app
from repro.server import jobs as server_jobs
from repro.server.client import ReproClient


@pytest.fixture(autouse=True)
def isolated_dirs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "run"))
    monkeypatch.setenv("REPRO_JOBS_DIR", str(tmp_path / "jobs"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ref"))
    yield tmp_path


MICRO_SPEC = RunSpec(
    benchmark="micro.syn", epsilon=0.5,
    strategy=SystematicStrategy(unit_size=25, n_init=40, max_rounds=1,
                                detailed_warming=64))


@pytest.fixture(scope="module")
def micro_result():
    """One real RunResult the gated stand-ins can hand back."""
    return execute_spec(MICRO_SPEC)


class TestQueueBackpressure:
    def test_queue_full_is_429(self, monkeypatch, micro_result):
        started = threading.Event()
        release = threading.Event()

        def gated(session, spec):
            started.set()
            assert release.wait(30)
            return micro_result

        monkeypatch.setattr(server_jobs, "execute_run", gated)
        app = create_app(ServerConfig(workers=1, queue_depth=1))
        try:
            client = ReproClient(app=app)
            client.submit_run(MICRO_SPEC.with_(seed=1))
            assert started.wait(10)  # worker holds job 1
            client.submit_run(MICRO_SPEC.with_(seed=2))  # fills the queue
            with pytest.raises(ServerError) as exc:
                client.submit_run(MICRO_SPEC.with_(seed=3))
            assert exc.value.status == 429
            assert exc.value.payload["queue_depth"] == 1
            # The rejected submission left no job record behind.
            assert len(client.jobs()) == 2
        finally:
            release.set()
            app.close()

    def test_graceful_shutdown_finishes_in_flight(self, monkeypatch,
                                                  micro_result):
        started = threading.Event()
        release = threading.Event()

        def gated(session, spec):
            started.set()
            assert release.wait(30)
            return micro_result

        monkeypatch.setattr(server_jobs, "execute_run", gated)
        app = create_app(ServerConfig(workers=1))
        client = ReproClient(app=app)
        job = client.submit_run(MICRO_SPEC.with_(seed=7))
        assert started.wait(10)
        closer = threading.Thread(target=app.close)
        closer.start()
        # Intake closes while the in-flight job still runs; fresh specs
        # (dedupe never applies) must start bouncing with 503.
        rejected = None
        for attempt in range(200):
            try:
                client.submit_run(MICRO_SPEC.with_(seed=100 + attempt))
            except ServerError as exc:
                rejected = exc
                break
            time.sleep(0.01)
        assert rejected is not None, "shutdown never closed intake"
        assert rejected.status == 503
        release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert client.job(job["id"])["status"] == "done"
        assert client.health()["status"] == "shutting-down"

    def test_job_timeout_marks_failed(self, monkeypatch, micro_result):
        release = threading.Event()

        def slow(session, spec):
            assert release.wait(30)
            return micro_result

        monkeypatch.setattr(server_jobs, "execute_run", slow)
        app = create_app(ServerConfig(workers=1, job_timeout=0.05))
        try:
            client = ReproClient(app=app)
            job = client.submit_run(MICRO_SPEC.with_(seed=9))
            with pytest.raises(ServerError) as exc:
                client.wait(job["id"], timeout=30)
            record = exc.value.payload["job"]
            assert record["status"] == "failed"
            assert "timeout" in record["error"]
            # A failed job's result route reports the failure as 409.
            with pytest.raises(ServerError) as exc:
                client.run_result(job["id"])
            assert exc.value.status == 409
            # Failed jobs may be resubmitted (fresh attempt, same id).
            release.set()
            app.queue.job_timeout = None
            retried = client.submit_run(MICRO_SPEC.with_(seed=9))
            assert retried["id"] == job["id"]
            assert retried["created"] is True
            client.wait(job["id"], timeout=30)
        finally:
            release.set()
            app.close()


class TestRestartRecovery:
    def test_queued_jobs_survive_restart(self, monkeypatch, micro_result):
        # workers=0: submissions persist but nothing drains them.
        app = create_app(ServerConfig(workers=0))
        client = ReproClient(app=app)
        a = client.submit_run(MICRO_SPEC.with_(seed=11))
        b = client.submit_run(MICRO_SPEC.with_(seed=12))
        assert {a["status"], b["status"]} == {"queued"}
        app.close()

        monkeypatch.setattr(server_jobs, "execute_run",
                            lambda session, spec: micro_result)
        app2 = create_app(ServerConfig(workers=1))
        try:
            client2 = ReproClient(app=app2)
            for job in (a, b):
                record = client2.wait(job["id"], timeout=30)
                assert record["restarts"] == 1
                assert record["has_result"] is True
        finally:
            app2.close()

    def test_interrupted_running_job_requeues(self, tmp_path):
        store = JobStore()
        record = JobRecord(id=f"run-{MICRO_SPEC.key()}", kind="run",
                           payload=MICRO_SPEC.to_dict(), status="running")
        store.save(record)
        app = create_app(ServerConfig(workers=1))
        try:
            client = ReproClient(app=app)
            finished = client.wait(record.id, timeout=120)
            assert finished["restarts"] == 1
        finally:
            app.close()


class TestJobStore:
    def test_record_roundtrip(self):
        store = JobStore()
        record = JobRecord(id="run-abc", kind="run", payload={"x": 1},
                           status="done", result={"y": 2})
        store.save(record)
        loaded = store.load("run-abc")
        assert loaded.to_dict() == record.to_dict()
        assert store.load("run-missing") is None

    def test_corrupt_record_ignored(self, tmp_path):
        store = JobStore()
        store.save(JobRecord(id="run-ok", kind="run", payload={}))
        (store.directory / "run-bad.json").write_text("{truncated")
        records = store.load_all()
        assert [r.id for r in records] == ["run-ok"]

    def test_gc(self, tmp_path):
        store = JobStore()
        old = JobRecord(id="run-old", kind="run", payload={},
                        status="done", submitted_at=1.0)
        fresh = JobRecord(id="run-new", kind="run", payload={},
                          status="done")
        running = JobRecord(id="run-live", kind="run", payload={},
                            status="running", submitted_at=1.0)
        for record in (old, fresh, running):
            store.save(record)
        (store.directory / "run-stray.123.tmp").write_text("junk")

        removed = {p.name for p in store.gc(max_age_days=30)}
        # Old finished record and the stray tmp go; the fresh record and
        # the (stale but still 'running') record stay.
        assert removed == {"run-old.json", "run-stray.123.tmp"}
        assert {r.id for r in store.load_all()} == {"run-new", "run-live"}

        store.gc(remove_all=True)
        assert store.load_all() == []


class TestResultCacheHardening:
    """Regression tests for atomic, degradable cache writes."""

    def test_concurrent_puts_never_corrupt(self, tmp_path, micro_result):
        cache = ResultCache(tmp_path / "cc")
        threads = [threading.Thread(target=cache.put, args=(micro_result,))
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one entry, valid JSON, loadable.
        entries = list((tmp_path / "cc").glob("*.json"))
        assert len(entries) == 1
        json.loads(entries[0].read_text())
        assert cache.get(micro_result.spec).estimates_dict() \
            == micro_result.estimates_dict()
        assert cache.stats()["entries"] == 1
        assert cache.stats()["stale_files"] == 0

    def test_leftover_tmp_is_invisible_to_get(self, tmp_path, micro_result):
        cache = ResultCache(tmp_path / "cc")
        cache.put(micro_result)
        # A writer killed mid-write leaves a tmp file, never a truncated
        # entry.
        path = cache.path(micro_result.spec)
        stray = path.with_suffix(".9999-1.tmp")
        stray.write_text('{"spec": {"benchmark": "micr')
        assert cache.get(micro_result.spec) is not None
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["stale_files"] == 1

    def test_unwritable_directory_degrades_with_warning(self, tmp_path,
                                                        micro_result):
        # A *file* at the cache path makes mkdir raise (works even when
        # the suite runs as root, where chmod 0o555 would not block).
        blocker = tmp_path / "not-a-dir"
        blocker.write_bytes(b"")
        cache = ResultCache(blocker)
        with pytest.warns(RuntimeWarning, match="cache write"):
            cache.put(micro_result)  # must not raise
        assert cache.get(micro_result.spec) is None

    def test_corrupt_entry_is_a_miss_and_overwritable(self, tmp_path,
                                                      micro_result):
        cache = ResultCache(tmp_path / "cc")
        path = cache.path(micro_result.spec)
        path.parent.mkdir(parents=True)
        path.write_text('{"spec": {"benchmark"')  # simulated torn write
        assert cache.get(micro_result.spec) is None
        cache.put(micro_result)
        assert cache.get(micro_result.spec) is not None


class TestServerCLI:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.workers == 2
        assert args.queue_depth == 16
        assert args.job_timeout is None

    def test_jobs_ls_and_gc(self, capsys):
        store = JobStore()
        store.save(JobRecord(id="run-x", kind="run",
                             payload={"benchmark": "micro.syn"},
                             status="done", submitted_at=1.0))
        assert main(["jobs", "ls"]) == 0
        out = capsys.readouterr().out
        assert "run-x" in out and "micro.syn" in out

        assert main(["jobs", "ls", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"][0]["id"] == "run-x"

        assert main(["jobs", "gc", "--max-age-days", "30"]) == 0
        out = capsys.readouterr().out
        assert "run-x.json" in out
        assert store.load_all() == []
