"""Unit tests for branch predictors, BTB, RAS, and the branch unit."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    BranchUnit,
    CombinedPredictor,
    GSharePredictor,
    ReturnAddressStack,
    SaturatingCounterTable,
)
from repro.config.machines import BranchConfig
from repro.isa import Opcode
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


def make_branch(pc: int, op: Opcode, taken: bool, target: int) -> DynInst:
    return DynInst(
        seq=0, pc=pc, op=op, opclass=OpClass.BRANCH, rd=None, srcs=(),
        mem_addr=None, is_load=False, is_store=False, is_branch=True,
        is_conditional=op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE),
        taken=taken, next_pc=target if taken else pc + 1)


class TestSaturatingCounters:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(100)

    def test_training_toward_taken(self):
        table = SaturatingCounterTable(4)
        assert table.predict(0) is False           # initialized weakly not-taken
        table.update(0, True)
        assert table.predict(0) is True
        table.update(0, True)
        table.update(0, False)
        assert table.predict(0) is True            # hysteresis

    def test_saturation(self):
        table = SaturatingCounterTable(4)
        for _ in range(10):
            table.update(1, True)
        assert table.counters[1] == table.MAX_VALUE
        for _ in range(10):
            table.update(1, False)
        assert table.counters[1] == 0


class TestDirectionPredictors:
    def test_bimodal_learns_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(20):
            predictor.update(12, True)
        assert predictor.predict(12) is True

    def test_gshare_learns_alternating_pattern(self):
        predictor = GSharePredictor(256, history_bits=4)
        pattern = [True, False] * 64
        # Train on the alternating pattern.
        for outcome in pattern:
            predictor.update(7, outcome)
        # After training, predictions should track the pattern.
        correct = 0
        for outcome in pattern[:32]:
            if predictor.predict(7) == outcome:
                correct += 1
            predictor.update(7, outcome)
        assert correct >= 28       # bimodal alone would get ~50%

    def test_combined_beats_components_on_mixed_workload(self):
        combined = CombinedPredictor(256, history_bits=6)
        # Branch A is strongly biased, branch B alternates.
        sequence = []
        state = True
        for i in range(400):
            sequence.append((0x10, True))
            state = not state
            sequence.append((0x20, state))
        for pc, outcome in sequence:
            combined.predict_and_update(pc, outcome)
        assert combined.misprediction_rate < 0.25

    def test_combined_reset(self):
        combined = CombinedPredictor(64, history_bits=4)
        combined.predict_and_update(3, True)
        combined.reset()
        assert combined.lookups == 0
        assert combined.misprediction_rate == 0.0


class TestBTBAndRAS:
    def test_btb_lookup_miss_then_hit(self):
        btb = BranchTargetBuffer(64, assoc=4)
        assert btb.lookup(10) is None
        btb.update(10, 99)
        assert btb.lookup(10) == 99
        assert btb.hit_rate == pytest.approx(0.5)

    def test_btb_eviction(self):
        btb = BranchTargetBuffer(2, assoc=2)
        pcs = [0, 2, 4]                       # all even PCs share set 0
        for pc in pcs:
            btb.update(pc, pc + 100)
        assert btb.lookup(0) is None          # oldest evicted
        assert btb.lookup(4) == 104

    def test_btb_invalid_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, assoc=4)

    def test_ras_push_pop_order(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_ras_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2


class TestBranchUnit:
    def make_unit(self) -> BranchUnit:
        return BranchUnit(BranchConfig(table_entries=256, history_bits=6,
                                       btb_entries=64, ras_entries=4))

    def test_biased_branch_becomes_predictable(self):
        unit = self.make_unit()
        for _ in range(50):
            unit.resolve(make_branch(5, Opcode.BNE, True, 2))
        assert unit.misprediction_rate < 0.2

    def test_direct_jump_needs_btb_training(self):
        unit = self.make_unit()
        first = unit.resolve(make_branch(9, Opcode.JUMP, True, 42))
        assert first.mispredicted is True          # BTB cold
        second = unit.resolve(make_branch(9, Opcode.JUMP, True, 42))
        assert second.mispredicted is False

    def test_call_return_pair_uses_ras(self):
        unit = self.make_unit()
        call = make_branch(3, Opcode.JAL, True, 20)
        ret = make_branch(25, Opcode.JR, True, 4)   # returns to call.pc + 1
        unit.resolve(call)
        outcome = unit.resolve(ret)
        assert outcome.predicted_target == 4
        assert outcome.mispredicted is False

    def test_warm_trains_without_counting_predictions(self):
        unit = self.make_unit()
        for _ in range(30):
            unit.warm(make_branch(5, Opcode.BNE, True, 2))
        assert unit.branches == 0                  # warm() records nothing
        outcome = unit.resolve(make_branch(5, Opcode.BNE, True, 2))
        assert outcome.mispredicted is False       # but state is trained

    def test_reset(self):
        unit = self.make_unit()
        unit.resolve(make_branch(5, Opcode.BNE, True, 2))
        unit.reset()
        assert unit.branches == 0
        assert unit.misprediction_rate == 0.0
