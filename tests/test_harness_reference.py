"""Tests for the reference-run harness, CV analysis, and rate measurement."""

import numpy as np
import pytest

from repro.core.stats import required_sample_size
from repro.harness.cv_analysis import (
    FIGURE3_TARGETS,
    ConfidenceTarget,
    cv_versus_unit_size,
    default_unit_sizes,
    minimum_measured_instructions,
    population_homogeneity,
    true_mean,
)
from repro.harness.reference import run_reference, unit_cpi_trace, unit_epi_trace
from repro.harness.runtime import measure_rates


class TestReferenceRun:
    def test_totals_consistent_with_chunks(self, micro_reference):
        ref = micro_reference
        assert ref.instructions > 0
        assert ref.chunk_cycles.sum() <= ref.cycles
        assert len(ref.chunk_cycles) == ref.instructions // ref.chunk_size
        assert len(ref.chunk_energy) == len(ref.chunk_cycles)
        assert ref.cpi > 0 and ref.epi > 0

    def test_unit_trace_aggregation(self, micro_reference):
        fine = unit_cpi_trace(micro_reference, 25)
        coarse = unit_cpi_trace(micro_reference, 100)
        assert len(coarse) == len(fine) // 4
        # Aggregating four fine units must equal one coarse unit exactly.
        regrouped = fine[:len(coarse) * 4].reshape(-1, 4).mean(axis=1)
        assert np.allclose(regrouped, coarse)

    def test_unit_trace_requires_multiple_of_chunk(self, micro_reference):
        with pytest.raises(ValueError):
            unit_cpi_trace(micro_reference, 30)

    def test_epi_trace(self, micro_reference):
        trace = unit_epi_trace(micro_reference, 50)
        assert (trace > 0).all()

    def test_mean_of_trace_close_to_full_stream_value(self, micro_reference):
        trace = unit_cpi_trace(micro_reference, 25)
        assert trace.mean() == pytest.approx(micro_reference.cpi, rel=0.02)

    def test_disk_cache_round_trip(self, micro, machine_8way, tmp_path):
        first = run_reference(micro.program, machine_8way, chunk_size=50,
                              use_cache=True, cache_dir=tmp_path)
        assert any(tmp_path.iterdir())
        second = run_reference(micro.program, machine_8way, chunk_size=50,
                               use_cache=True, cache_dir=tmp_path)
        assert second.instructions == first.instructions
        assert second.cycles == first.cycles
        assert np.array_equal(second.chunk_cycles, first.chunk_cycles)


class TestCVAnalysis:
    def test_default_unit_sizes_are_geometric(self, micro_reference):
        sizes = default_unit_sizes(micro_reference)
        assert sizes[0] == micro_reference.chunk_size
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_cv_decreases_with_unit_size(self, micro_reference):
        """Figure 2's qualitative shape: V_CPI is non-increasing (up to
        small estimation noise) as units grow."""
        curve = cv_versus_unit_size(micro_reference)
        sizes = sorted(curve)
        assert curve[sizes[0]] > 0
        assert curve[sizes[-1]] <= curve[sizes[0]] * 1.05

    def test_minimum_measured_instructions_ordering(self, micro_reference):
        """Figure 3: tighter intervals and higher confidence need more
        measured instructions."""
        results = minimum_measured_instructions(micro_reference, unit_size=25)
        def measured(eps, conf):
            return results[ConfidenceTarget(eps, conf)]["measured_instructions"]
        assert measured(0.01, 0.997) > measured(0.03, 0.997)
        assert measured(0.03, 0.997) > measured(0.03, 0.95)
        for info in results.values():
            assert 0 < info["fraction_of_benchmark"] <= 1.0

    def test_minimum_instructions_uses_fpc(self, micro_reference):
        with_fpc = minimum_measured_instructions(micro_reference, 25,
                                                 use_fpc=True)
        without = minimum_measured_instructions(micro_reference, 25,
                                                use_fpc=False)
        target = FIGURE3_TARGETS[3]     # ±1% at 99.7%, the most demanding
        assert with_fpc[target]["sample_size"] <= without[target]["sample_size"]

    def test_required_sample_size_consistency(self, micro_reference):
        curve = cv_versus_unit_size(micro_reference, [25])
        cv = curve[25]
        population = micro_reference.instructions // 25
        n = required_sample_size(cv, 0.03, 0.997, population_size=population)
        results = minimum_measured_instructions(micro_reference, 25)
        assert results[ConfidenceTarget(0.03, 0.997)]["sample_size"] == n

    def test_true_mean(self, micro_reference):
        assert true_mean(micro_reference, "cpi") == micro_reference.cpi
        assert true_mean(micro_reference, "epi") == micro_reference.epi

    def test_population_homogeneity_is_small(self, micro_reference):
        """The paper verifies that benchmarks show negligible homogeneity
        at sampling periodicities, so systematic ~ random sampling."""
        delta = population_homogeneity(micro_reference, unit_size=25,
                                       interval=8)
        assert abs(delta) < 0.5


class TestRateMeasurement:
    def test_rates_ordering(self, micro, machine_8way):
        rates = measure_rates(micro.program, machine_8way, instructions=5000)
        assert rates.functional_ips > 0
        assert rates.detailed_ips > 0
        # Detailed simulation must be slower than functional simulation.
        assert rates.s_detailed < 1.0
        assert 0 < rates.s_warming <= 1.5
        converted = rates.to_simulator_rates()
        assert 0 < converted.s_detailed <= 1.0

    def test_invalid_instruction_count(self, micro, machine_8way):
        with pytest.raises(ValueError):
            measure_rates(micro.program, machine_8way, instructions=0)
