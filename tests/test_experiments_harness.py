"""Tests for the per-figure experiment harness at miniature scale.

These run every experiment entry point end-to-end on a tiny two-benchmark
suite so that the wiring of `repro.harness.experiments` (the code the
``benchmarks/`` modules rely on) is exercised inside the fast test suite.
"""

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    figure2_cv_curves,
    figure3_minimum_instructions,
    figure5_optimal_unit_size,
    figure6_cpi_estimates,
    figure8_simpoint_comparison,
    table3_configurations,
    table4_detailed_warming,
    table5_functional_warming_bias,
    table6_runtimes,
)


@pytest.fixture(scope="module")
def tiny_ctx():
    """A miniature experiment context: two benchmarks, ~30k instructions."""
    return ExperimentContext(
        scale=0.05,
        fast=True,
        suite_names=["gzip.syn", "mcf.syn"],
        unit_size=50,
        chunk_size=25,
        n_init=60,
        epsilon=0.2,
        use_cache=False,
    )


class TestContext:
    def test_machines_and_warming(self, tiny_ctx):
        assert set(tiny_ctx.machines) == {"8-way", "16-way"}
        assert tiny_ctx.warming(tiny_ctx.machine("16-way")) == \
            2 * tiny_ctx.warming(tiny_ctx.machine("8-way"))

    def test_benchmark_and_reference_are_cached(self, tiny_ctx):
        first = tiny_ctx.benchmark("gzip.syn")
        second = tiny_ctx.benchmark("gzip.syn")
        assert first is second
        ref1 = tiny_ctx.reference("gzip.syn", "8-way")
        ref2 = tiny_ctx.reference("gzip.syn", "8-way")
        assert ref1 is ref2
        assert tiny_ctx.benchmark_length("gzip.syn") == ref1.instructions

    def test_subset_prefers_diverse_benchmarks(self, tiny_ctx):
        subset = tiny_ctx.subset(1)
        assert subset == ["gcc.syn"] or subset[0] in tiny_ctx.suite_names


class TestExperimentEntryPoints:
    def test_table3(self, tiny_ctx):
        data = table3_configurations(tiny_ctx)
        assert "RUU/LSQ" in data["report"]

    def test_figure2(self, tiny_ctx):
        data = figure2_cv_curves(tiny_ctx)
        assert set(data["curves"]) == set(tiny_ctx.suite_names)
        for curve in data["curves"].values():
            assert all(v >= 0 for v in curve.values())

    def test_figure3(self, tiny_ctx):
        data = figure3_minimum_instructions(tiny_ctx, machine_names=("8-way",))
        assert len(data["targets"]) == len(tiny_ctx.suite_names)
        assert all(0 < f < 0.05 for f in data["paper_scale_fractions"].values())

    def test_figure5(self, tiny_ctx):
        data = figure5_optimal_unit_size(
            tiny_ctx, benchmark_names=["gzip.syn"], machine_name="8-way")
        assert "gzip.syn" in data["optima"]
        for fractions in data["fractions"]["gzip.syn"].values():
            assert all(0 < f <= 1.0 for f in fractions.values())

    def test_table4(self, tiny_ctx):
        data = table4_detailed_warming(
            tiny_ctx, benchmark_names=["gzip.syn"], warming_values=[0, 128])
        assert "gzip.syn" in data["requirements"]
        assert set(data["biases"]["gzip.syn"]) <= {0, 128}

    def test_table5(self, tiny_ctx):
        data = table5_functional_warming_bias(
            tiny_ctx, machine_names=("8-way",), phases=2)
        assert len(data["biases"]) == len(tiny_ctx.suite_names)
        assert all(abs(b) < 0.2 for b in data["biases"].values())

    def test_figure6(self, tiny_ctx):
        data = figure6_cpi_estimates(tiny_ctx, machine_names=("8-way",))
        entries = data["entries"]
        assert len(entries) == len(tiny_ctx.suite_names)
        for entry in entries.values():
            assert entry["true"] > 0
            assert entry["final_ci"] > 0
            assert abs(entry["final_error"]) < 0.5

    def test_table6(self, tiny_ctx):
        data = table6_runtimes(tiny_ctx, machine_name="8-way")
        for row in data["details"].values():
            # At this miniature scale the sampling workload can cover the
            # whole (30k-instruction) stream, so SMARTS is not guaranteed
            # to beat full detailed simulation here — only the paper-scale
            # projection is meaningful, plus basic sanity of the numbers.
            assert row["functional_seconds"] > 0
            assert row["smarts_seconds"] > 0
            assert row["paper_scale_speedup"] > 1
        assert data["average_speedup"] > 0

    def test_figure8(self, tiny_ctx):
        data = figure8_simpoint_comparison(
            tiny_ctx, benchmark_names=["gzip.syn"], interval_size=1500,
            max_clusters=4)
        entry = data["entries"]["gzip.syn"]
        assert entry["simpoint_cpi"] > 0
        assert entry["smarts_ci"] > 0
