"""Tests for the memory hierarchy and the machine configurations (Table 3)."""

import pytest

from repro.config import (
    CONFIGURATIONS,
    get_config,
    scaled_16way,
    scaled_8way,
    table3_16way,
    table3_8way,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.memory import L1, L2, MEM, MemoryHierarchy


class TestMemoryHierarchy:
    def make(self):
        return MemoryHierarchy(scaled_8way())

    def test_cold_access_goes_to_memory(self):
        hierarchy = self.make()
        result = hierarchy.access_data(0x1000)
        assert result.level == MEM
        assert result.tlb_miss is True

    def test_second_access_hits_l1(self):
        hierarchy = self.make()
        hierarchy.access_data(0x1000)
        result = hierarchy.access_data(0x1000)
        assert result.level == L1
        assert result.tlb_miss is False

    def test_l1_victim_still_hits_in_l2(self):
        config = scaled_8way()
        hierarchy = MemoryHierarchy(config)
        l1_blocks = config.l1d.size_bytes // config.l1d.block_bytes
        # Touch enough distinct blocks to overflow L1 but not L2.
        addresses = [i * config.l1d.block_bytes for i in range(l1_blocks * 2)]
        for addr in addresses:
            hierarchy.access_data(addr)
        result = hierarchy.access_data(addresses[0])
        assert result.level in (L1, L2)
        assert result.level == L2  # evicted from L1, resident in L2

    def test_instruction_side_separate_from_data_side(self):
        hierarchy = self.make()
        hierarchy.access_instruction(0x2000)
        result = hierarchy.access_data(0x2000)
        assert result.level != L1   # data access does not hit in L1I

    def test_latency_mapping(self):
        config = scaled_8way()
        hierarchy = MemoryHierarchy(config)
        from repro.memory.hierarchy import AccessResult
        assert hierarchy.latency(AccessResult(L1, False)) == config.l1_latency
        assert hierarchy.latency(AccessResult(L2, False)) == config.l2_latency
        assert hierarchy.latency(AccessResult(MEM, False)) == config.mem_latency
        assert hierarchy.latency(AccessResult(L1, True)) == (
            config.l1_latency + config.tlb_miss_latency)

    def test_flush_and_stats(self):
        hierarchy = self.make()
        hierarchy.access_data(0x1000)
        hierarchy.access_data(0x1000)
        summary = hierarchy.stats_summary()
        assert summary["l1d_accesses"] == 2
        assert 0 < summary["l1d_miss_rate"] < 1
        hierarchy.flush()
        assert hierarchy.access_data(0x1000).level == MEM


class TestMachineConfigs:
    def test_table3_8way_parameters(self):
        config = table3_8way()
        assert config.ruu_size == 128 and config.lsq_size == 64
        assert config.l1d.size_bytes == 32 * 1024 and config.l1d.assoc == 2
        assert config.l2.size_bytes == 1024 * 1024 and config.l2.assoc == 4
        assert config.store_buffer_entries == 16
        assert (config.l1_latency, config.l2_latency, config.mem_latency) == (1, 12, 100)
        assert config.fu_counts[OpClass.IALU] == 4
        assert config.branch.mispredict_penalty == 7

    def test_table3_16way_doubles_resources(self):
        eight, sixteen = table3_8way(), table3_16way()
        assert sixteen.ruu_size == 2 * eight.ruu_size
        assert sixteen.lsq_size == 2 * eight.lsq_size
        assert sixteen.l1d.size_bytes == 2 * eight.l1d.size_bytes
        assert sixteen.l2.size_bytes == 2 * eight.l2.size_bytes
        assert sixteen.store_buffer_entries == 2 * eight.store_buffer_entries
        assert sixteen.fu_counts[OpClass.IALU] == 16
        assert sixteen.branch.mispredict_penalty == 10

    def test_scaled_configs_preserve_ratios(self):
        eight, sixteen = scaled_8way(), scaled_16way()
        assert sixteen.l1d.size_bytes == 2 * eight.l1d.size_bytes
        assert sixteen.l2.size_bytes == 2 * eight.l2.size_bytes
        assert sixteen.ruu_size == 2 * eight.ruu_size
        # Scaled caches are much smaller than the paper's.
        assert eight.l1d.size_bytes < table3_8way().l1d.size_bytes

    def test_exec_latency_overrides(self):
        config = scaled_8way()
        assert config.exec_latency(Opcode.ADD, OpClass.IALU) == 1
        assert config.exec_latency(Opcode.DIV, OpClass.IMULT) > \
            config.exec_latency(Opcode.MUL, OpClass.IMULT)
        assert config.exec_latency(Opcode.FDIV, OpClass.FPMULT) > \
            config.exec_latency(Opcode.FMUL, OpClass.FPMULT)

    def test_describe_contains_table3_rows(self):
        rows = table3_8way().describe()
        assert rows["RUU/LSQ"] == "128/64"
        assert "MSHR" in rows["L1 I/D"]
        assert "Combined" in rows["Branch predictor"]

    def test_registry(self):
        assert set(CONFIGURATIONS) == {"8-way", "16-way", "8-way-scaled",
                                       "16-way-scaled"}
        assert get_config("8-way").name == "8-way"
        with pytest.raises(KeyError):
            get_config("32-way")
