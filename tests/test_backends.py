"""Tests for repro.backends: registry, queue protocol, bit-identity.

The headline contract: serial, local-pool, and queue backends produce
bit-identical ``estimates_dict()`` payloads for the same specs — the
queue backend with *real* worker subprocesses draining a shared
file-based work queue, fetching checkpoints from the artifact store by
content key.
"""

import os
import time

import pytest

from repro.api import (
    BACKENDS,
    CheckpointStore,
    LocalPoolBackend,
    QueueBackend,
    SerialBackend,
    RunResult,
    RunSpec,
    Session,
    SystematicStrategy,
    get_backend,
    resolve_backend,
)
from repro.api.executor import resolve_benchmark, resolve_machine
from repro.backends import (
    DEFAULT_LEASE,
    FileWorkQueue,
    backend_from_env,
    run_worker,
)
from repro.reliability import SpecFailure


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    """One throwaway artifact root + queue per test, shared by workers.

    The spawned worker subprocesses inherit the environment, so they
    resolve the same store/queue directories as the submitting test.
    """
    for var in ("REPRO_RUN_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                "REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR", "REPRO_BACKEND"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
    monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))


def _micro_spec(**changes) -> RunSpec:
    """A cheap deterministic spec on the ~15k-instruction benchmark."""
    spec = RunSpec(
        benchmark="micro.syn",
        strategy=SystematicStrategy(unit_size=25, n_init=30, max_rounds=1,
                                    detailed_warming=50),
        epsilon=0.5,
    )
    return spec.with_(**changes) if changes else spec


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) == {"serial", "local-pool", "queue"}
        assert get_backend("serial") is SerialBackend
        assert get_backend("local-pool") is LocalPoolBackend
        assert get_backend("queue") is QueueBackend

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="unknown backend 'nope'.*"
                                           "local-pool.*queue.*serial"):
            get_backend("nope")

    def test_resolve_accepts_name_class_instance(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend(LocalPoolBackend), LocalPoolBackend)
        instance = QueueBackend(workers=0)
        assert resolve_backend(instance) is instance

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_backend(3)

    def test_backend_from_env(self, monkeypatch):
        assert backend_from_env() is None
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert isinstance(backend_from_env(), SerialBackend)
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        with pytest.raises(ValueError, match="REPRO_BACKEND names an "
                                             "unknown backend 'nope'"):
            backend_from_env()


class TestFileWorkQueue:
    def test_submit_claim_complete_roundtrip(self):
        queue = FileWorkQueue()
        spec = _micro_spec()
        name = queue.submit(spec)
        assert queue.counts()["pending"] == 1
        claimed_name, payload = queue.claim_next()
        assert claimed_name == name
        assert RunSpec.from_dict(payload["spec"]) == spec
        assert queue.claim_next() is None  # claim is exclusive
        queue.complete(name, {"fake": "result"}, worker={"pid": 1})
        state, record = queue.result(name)
        assert state == "done"
        assert record["result"] == {"fake": "result"}
        assert queue.counts() == {"pending": 0, "claimed": 0,
                                  "done": 1, "failed": 0}

    def test_submit_is_idempotent_and_clears_stale_terminal(self):
        queue = FileWorkQueue()
        spec = _micro_spec()
        name = queue.submit(spec)
        assert queue.submit(spec) == name
        assert queue.counts()["pending"] == 1
        queue.claim_next()
        queue.complete(name, {"old": True}, worker=None)
        queue.submit(spec)  # resubmission invalidates the old record
        assert queue.result(name) is None
        assert queue.counts()["pending"] == 1

    def test_requeue_stale_bumps_attempts_then_fails(self):
        queue = FileWorkQueue()
        name = queue.submit(_micro_spec())
        for attempt in range(1, 3):
            claimed, payload = queue.claim_next()
            assert claimed == name
            assert payload["attempts"] == attempt - 1
            claim_path = queue._path("claimed", name)
            os.utime(claim_path, (time.time() - 60,) * 2)
            assert queue.requeue_stale(lease_seconds=1) == [name]
        # Third stale claim exhausts the attempt budget.
        queue.claim_next()
        os.utime(queue._path("claimed", name), (time.time() - 60,) * 2)
        assert queue.requeue_stale(lease_seconds=1, max_attempts=3) == []
        state, record = queue.result(name)
        assert state == "failed"
        assert "abandoned" in record["error"]

    def test_fresh_claim_not_requeued(self):
        queue = FileWorkQueue()
        queue.submit(_micro_spec())
        queue.claim_next()
        assert queue.requeue_stale(lease_seconds=30) == []


class TestRunWorker:
    def test_worker_drains_queue_in_process(self):
        queue = FileWorkQueue()
        spec = _micro_spec()
        name = queue.submit(spec, use_cache=True)
        assert run_worker(poll=0.01, max_jobs=1) == 1
        state, record = queue.result(name)
        assert state == "done"
        assert record["worker"]["pid"] == os.getpid()
        assert record["worker"]["cached"] is False
        result = Session().run_batch([spec])[0]  # hits the shared cache
        envelope = RunResult.from_dict(record["result"])
        assert result.estimates_dict() == envelope.estimates_dict()

    def test_worker_fails_job_on_exception(self):
        queue = FileWorkQueue()
        name = queue.submit(_micro_spec())
        # Sabotage the pending spec so RunSpec.from_dict blows up.
        path = queue._path("pending", name)
        import json

        payload = json.loads(path.read_text())
        payload["spec"]["strategy"] = {"name": "no-such-strategy"}
        path.write_text(json.dumps(payload))
        assert run_worker(poll=0.01, max_idle=0.5) == 1
        state, record = queue.result(name)
        assert state == "failed"
        assert "no-such-strategy" in record["error"]

    def test_worker_exits_when_idle(self):
        assert run_worker(poll=0.01, max_idle=0.1) == 0


class TestBackendBitIdentity:
    def test_all_backends_bit_identical(self):
        """serial == local-pool == queue on estimates_dict().

        The queue run spawns two REAL worker subprocesses (fresh
        interpreters via the ``repro-smarts worker`` CLI) draining the
        shared file queue.  Caching is off so every backend actually
        executes its specs.
        """
        specs = [_micro_spec(), _micro_spec(machine="16-way")]
        golden = Session(use_cache=False, backend="serial").run_batch(specs)
        payloads = [r.estimates_dict() for r in golden]

        pool = Session(use_cache=False, backend=LocalPoolBackend(),
                       max_workers=2).run_batch(specs)
        assert [r.estimates_dict() for r in pool] == payloads

        queue = Session(use_cache=False, backend="queue",
                        max_workers=2).run_batch(specs)
        assert [r.estimates_dict() for r in queue] == payloads

    def test_queue_worker_fetches_checkpoints_by_key(self):
        """A worker that never built a checkpoint set restores from it.

        The set is built once in this process and published through the
        shared artifact store; the spawned worker's pass report proves
        it loaded the set by content key (no ``checkpoint_build`` pass)
        while its result proves the set was used (restores > 0).
        """
        spec = _micro_spec(checkpoints="auto")
        program = resolve_benchmark(spec.benchmark, spec.scale)
        machine = resolve_machine(spec.machine)
        CheckpointStore().get_or_build(program, machine,
                                       spec.strategy.unit_size)

        backend = QueueBackend(workers=2, timeout=300.0)
        result = backend.run_specs([spec], use_cache=False)[0]
        assert result.checkpoint_restores > 0

        queue = FileWorkQueue()
        state, record = queue.result(FileWorkQueue.job_name(spec))
        assert state == "done"
        assert record["worker"]["pid"] != os.getpid()  # a real subprocess
        kinds = [event["kind"] for event in record["worker"]["passes"]]
        assert "checkpoint_build" not in kinds

    def test_queue_backend_surfaces_worker_failure(self):
        import threading

        spec = _micro_spec()
        backend = QueueBackend(workers=0, poll=0.01, timeout=10.0)
        queue = FileWorkQueue()

        def saboteur() -> None:
            # Act like a worker that claims the job and reports failure.
            deadline = time.time() + 5
            while time.time() < deadline:
                claim = queue.claim_next()
                if claim is not None:
                    queue.fail(claim[0], "kaboom", worker=None)
                    return
                time.sleep(0.01)

        thread = threading.Thread(target=saboteur)
        thread.start()
        try:
            envelope = backend.run_specs([spec], use_cache=False)[0]
        finally:
            thread.join()
        assert isinstance(envelope, SpecFailure)
        assert "kaboom" in envelope.error
        assert envelope.spec == spec

    def test_queue_backend_times_out_without_workers(self):
        backend = QueueBackend(workers=0, poll=0.01, timeout=0.3)
        envelope = backend.run_specs([_micro_spec()], use_cache=False)[0]
        assert isinstance(envelope, SpecFailure)
        assert envelope.error_type == "TimeoutError"
        assert envelope.transient is True


class TestSessionBackendSelection:
    def test_unknown_backend_name_raises_descriptive_error(self):
        session = Session(backend="warp-drive", use_cache=False)
        with pytest.raises(KeyError, match="unknown backend 'warp-drive'"):
            session.run_batch([_micro_spec()])

    def test_env_backend_applies_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        session = Session(use_cache=False)
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            session.run_batch([_micro_spec()])
