"""Unit tests for the functional simulator (architectural semantics)."""

import pytest

from repro.functional import FunctionalCore, measure_program_length
from repro.isa import ArchState, Opcode, ProgramBuilder


def run_to_halt(builder: ProgramBuilder) -> FunctionalCore:
    core = FunctionalCore(builder.build())
    core.run_to_completion(limit=100_000)
    return core


class TestArithmetic:
    def test_addi_and_add(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 5)
        b.addi("r2", "r0", 7)
        b.add("r3", "r1", "r2")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 12

    def test_sub_and_logic(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 0b1100)
        b.addi("r2", "r0", 0b1010)
        b.sub("r3", "r1", "r2")
        b.and_("r4", "r1", "r2")
        b.or_("r5", "r1", "r2")
        b.xor("r6", "r1", "r2")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 2
        assert core.state.int_regs[4] == 0b1000
        assert core.state.int_regs[5] == 0b1110
        assert core.state.int_regs[6] == 0b0110

    def test_shifts_and_compare(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 3)
        b.addi("r2", "r0", 2)
        b.sll("r3", "r1", "r2")
        b.srl("r4", "r3", "r2")
        b.slt("r5", "r2", "r1")
        b.slti("r6", "r1", 2)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 12
        assert core.state.int_regs[4] == 3
        assert core.state.int_regs[5] == 1
        assert core.state.int_regs[6] == 0

    def test_mul_div_mod(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 17)
        b.addi("r2", "r0", 5)
        b.mul("r3", "r1", "r2")
        b.div("r4", "r1", "r2")
        b.mod("r5", "r1", "r2")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 85
        assert core.state.int_regs[4] == 3
        assert core.state.int_regs[5] == 2

    def test_division_by_zero_yields_zero(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 17)
        b.div("r3", "r1", "r0")
        b.mod("r4", "r1", "r0")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 0
        assert core.state.int_regs[4] == 0

    def test_r0_is_hardwired_to_zero(self):
        b = ProgramBuilder("t")
        b.addi("r0", "r0", 99)
        b.addi("r1", "r0", 1)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[0] == 0
        assert core.state.int_regs[1] == 1


class TestFloatingPoint:
    def test_fp_pipeline(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 9)
        b.cvtif("f1", "r1")
        b.fsqrt("f2", "f1")
        b.addi("r2", "r0", 2)
        b.cvtif("f3", "r2")
        b.fmul("f4", "f2", "f3")      # 6.0
        b.fadd("f5", "f4", "f1")      # 15.0
        b.fsub("f6", "f5", "f3")      # 13.0
        b.fdiv("f7", "f6", "f3")      # 6.5
        b.fneg("f8", "f7")            # -6.5
        b.cvtfi("r3", "f7")
        b.halt()
        core = run_to_halt(b)
        fp = core.state.fp_regs
        assert fp[2] == pytest.approx(3.0)
        assert fp[4] == pytest.approx(6.0)
        assert fp[5] == pytest.approx(15.0)
        assert fp[7] == pytest.approx(6.5)
        assert fp[8] == pytest.approx(-6.5)
        assert core.state.int_regs[3] == 6

    def test_fdiv_by_zero_yields_zero(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 3)
        b.cvtif("f1", "r1")
        b.fdiv("f2", "f1", "f0")
        b.halt()
        core = run_to_halt(b)
        assert core.state.fp_regs[2] == 0.0


class TestMemory:
    def test_load_store_roundtrip(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 0x200)
        b.addi("r2", "r0", 42)
        b.store("r2", "r1", 0)
        b.load("r3", "r1", 0)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 42

    def test_initialized_data_segment(self):
        b = ProgramBuilder("t")
        b.data_word(0x300, 7)
        b.addi("r1", "r0", 0x300)
        b.load("r2", "r1", 0)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[2] == 7

    def test_uninitialized_memory_reads_zero(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 0x400)
        b.load("r2", "r1", 0)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[2] == 0

    def test_fp_load_store(self):
        b = ProgramBuilder("t")
        b.data_word(0x500, 2.5)
        b.addi("r1", "r0", 0x500)
        b.fload("f1", "r1", 0)
        b.fadd("f2", "f1", "f1")
        b.fstore("f2", "r1", 8)
        b.load("r2", "r1", 8)   # integer view of the stored float
        b.halt()
        core = run_to_halt(b)
        assert core.state.fp_regs[2] == pytest.approx(5.0)
        assert core.state.memory[0x508] == pytest.approx(5.0)


class TestControlFlow:
    def test_counted_loop(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 10)
        b.addi("r2", "r0", 0)
        b.label("top")
        b.addi("r2", "r2", 3)
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "top")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[2] == 30

    def test_branch_taken_records_dyninst(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 1)
        b.label("skip_target")
        b.beq("r1", "r0", "skip_target")
        b.halt()
        core = FunctionalCore(b.build())
        core.step()
        dyn = core.step()
        assert dyn.is_branch and dyn.is_conditional
        assert dyn.taken is False
        assert dyn.next_pc == 2

    def test_jal_and_jr_implement_call_return(self):
        b = ProgramBuilder("t")
        b.jump("main")
        b.label("callee")
        b.addi("r2", "r0", 5)
        b.jr("r31")
        b.label("main")
        b.jal("r31", "callee")
        b.addi("r3", "r2", 1)
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[2] == 5
        assert core.state.int_regs[3] == 6

    def test_bge_and_blt(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 4)
        b.addi("r2", "r0", 4)
        b.addi("r3", "r0", 0)
        b.bge("r1", "r2", "ge_taken")
        b.addi("r3", "r3", 100)
        b.label("ge_taken")
        b.blt("r1", "r2", "lt_taken")
        b.addi("r3", "r3", 1)
        b.label("lt_taken")
        b.halt()
        core = run_to_halt(b)
        assert core.state.int_regs[3] == 1


class TestCoreBehaviour:
    def test_halt_stops_execution(self):
        b = ProgramBuilder("t")
        b.halt()
        b.addi("r1", "r0", 1)
        core = run_to_halt(b)
        assert core.state.int_regs[1] == 0
        assert core.halted
        assert core.step() is None

    def test_running_off_the_end_halts(self):
        b = ProgramBuilder("t")
        b.nop()
        core = FunctionalCore(b.build())
        assert core.step() is not None
        assert core.step() is None
        assert core.halted

    def test_dyninst_sequence_numbers(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 1)
        b.addi("r2", "r0", 2)
        b.halt()
        core = FunctionalCore(b.build())
        assert core.step().seq == 0
        assert core.step().seq == 1

    def test_run_callback_sees_every_instruction(self):
        b = ProgramBuilder("t")
        for _ in range(5):
            b.nop()
        b.halt()
        seen = []
        core = FunctionalCore(b.build())
        executed = core.run(100, seen.append)
        assert executed == 6
        assert len(seen) == 6

    def test_max_instructions_limit(self):
        b = ProgramBuilder("t")
        b.addi("r1", "r0", 1)
        b.label("spin")
        b.jump("spin")
        core = FunctionalCore(b.build(), max_instructions=50)
        executed = core.run_to_completion()
        assert executed == 50
        assert core.halted

    def test_measure_program_length_matches_manual_count(self, micro):
        length = measure_program_length(micro.program)
        core = FunctionalCore(micro.program)
        assert core.run_to_completion() == length

    def test_measure_program_length_raises_on_nonterminating(self):
        b = ProgramBuilder("t")
        b.label("spin")
        b.jump("spin")
        with pytest.raises(RuntimeError):
            measure_program_length(b.build(), limit=1000)

    def test_determinism(self, micro):
        first = FunctionalCore(micro.program)
        second = FunctionalCore(micro.program)
        first.run_to_completion()
        second.run_to_completion()
        assert first.state == second.state
        assert first.instructions_retired == second.instructions_retired


class TestArchState:
    def test_align(self):
        assert ArchState.align(0) == 0
        assert ArchState.align(13) == 8
        assert ArchState.align(16) == 16

    def test_copy_is_independent(self):
        state = ArchState()
        state.write_reg(3, 7)
        state.store_word(0x10, 9)
        clone = state.copy()
        clone.write_reg(3, 8)
        clone.store_word(0x10, 1)
        assert state.read_reg(3) == 7
        assert state.load_word(0x10) == 9
        assert state != clone

    def test_fp_register_flat_namespace(self):
        state = ArchState()
        state.write_reg(33, 2.5)
        assert state.fp_regs[1] == pytest.approx(2.5)
        assert state.read_reg(33) == pytest.approx(2.5)
