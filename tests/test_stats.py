"""Unit and property-based tests for the sampling statistics module."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    CONFIDENCE_95,
    CONFIDENCE_997,
    achieved_confidence_interval,
    achieved_confidence_level,
    coefficient_of_variation,
    intraclass_correlation,
    relative_error,
    required_sample_size,
    sample_statistics,
    sampling_bias,
    systematic_sample_means,
    z_score,
)


class TestZScore:
    def test_common_values(self):
        assert z_score(0.95) == pytest.approx(1.96, abs=0.01)
        assert z_score(0.997) == pytest.approx(2.97, abs=0.02)
        assert z_score(0.68) == pytest.approx(0.99, abs=0.02)

    def test_monotonic_in_confidence(self):
        assert z_score(0.99) > z_score(0.95) > z_score(0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_confidence(self, bad):
        with pytest.raises(ValueError):
            z_score(bad)


class TestSampleStatistics:
    def test_known_values(self):
        stats = sample_statistics([2.0, 4.0, 6.0, 8.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(np.std([2, 4, 6, 8], ddof=1))
        assert stats.coefficient_of_variation == pytest.approx(stats.std / 5.0)

    def test_single_element(self):
        stats = sample_statistics([3.0])
        assert stats.std == 0.0
        assert stats.confidence_interval() == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sample_statistics([])

    def test_confidence_interval_formula(self):
        stats = sample_statistics([1.0, 2.0, 3.0, 4.0, 5.0] * 20)
        expected = z_score(CONFIDENCE_997) * stats.coefficient_of_variation \
            / math.sqrt(stats.n)
        assert stats.confidence_interval(CONFIDENCE_997) == pytest.approx(expected)
        assert stats.absolute_confidence_interval(CONFIDENCE_997) == \
            pytest.approx(expected * stats.mean)

    def test_cv_of_constant_population_is_zero(self):
        assert coefficient_of_variation([5.0] * 50) == 0.0


class TestRequiredSampleSize:
    def test_paper_rule_of_thumb(self):
        # The paper: V = 1.0, +/-3% at 99.7% -> n ~ (3/0.03)^2 = 10,000.
        n = required_sample_size(1.0, 0.03, 0.997)
        assert 9_500 <= n <= 10_100

    def test_quadratic_in_cv(self):
        n1 = required_sample_size(0.5, 0.03, 0.997)
        n2 = required_sample_size(1.0, 0.03, 0.997)
        assert n2 / n1 == pytest.approx(4.0, rel=0.05)

    def test_tighter_interval_needs_more_samples(self):
        assert required_sample_size(1.0, 0.01, 0.997) > \
            required_sample_size(1.0, 0.03, 0.997)

    def test_higher_confidence_needs_more_samples(self):
        assert required_sample_size(1.0, 0.03, 0.997) > \
            required_sample_size(1.0, 0.03, 0.95)

    def test_finite_population_correction_caps_at_population(self):
        n = required_sample_size(2.0, 0.01, 0.997, population_size=500)
        assert n <= 500

    def test_fpc_reduces_required_size(self):
        without = required_sample_size(1.0, 0.03, 0.997)
        with_fpc = required_sample_size(1.0, 0.03, 0.997, population_size=20_000)
        assert with_fpc < without

    def test_zero_cv_needs_one_sample(self):
        assert required_sample_size(0.0, 0.03, 0.997) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            required_sample_size(1.0, 0.0)
        with pytest.raises(ValueError):
            required_sample_size(-1.0, 0.03)
        with pytest.raises(ValueError):
            required_sample_size(1.0, 0.03, population_size=0)

    @given(cv=st.floats(min_value=0.01, max_value=10.0),
           epsilon=st.floats(min_value=0.001, max_value=0.5),
           confidence=st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_with_achieved_interval(self, cv, epsilon, confidence):
        """A sample of the required size achieves the target interval."""
        n = required_sample_size(cv, epsilon, confidence)
        assert achieved_confidence_interval(cv, n, confidence) <= epsilon * 1.001


class TestAchievedConfidence:
    def test_interval_shrinks_with_n(self):
        assert achieved_confidence_interval(1.0, 400) < \
            achieved_confidence_interval(1.0, 100)

    def test_level_grows_with_n(self):
        assert achieved_confidence_level(1.0, 400, 0.05) > \
            achieved_confidence_level(1.0, 100, 0.05)

    def test_level_is_one_for_zero_cv(self):
        assert achieved_confidence_level(0.0, 10, 0.01) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            achieved_confidence_interval(1.0, 0)


class TestSystematicSamplingDiagnostics:
    def test_sample_means_shape(self):
        population = list(range(100))
        means = systematic_sample_means(population, interval=10)
        assert len(means) == 10
        # Mean of the systematic-sample means equals the population mean.
        assert means.mean() == pytest.approx(np.mean(population))

    def test_bias_of_true_values_is_zero(self):
        population = np.random.default_rng(0).normal(10.0, 2.0, size=1000)
        bias = sampling_bias(population, interval=10)
        assert bias == pytest.approx(0.0, abs=1e-9)

    def test_bias_with_subset_of_offsets(self):
        population = np.arange(100, dtype=float)
        bias = sampling_bias(population, interval=10, offsets=[0])
        # Offset 0 picks 0,10,...,90 whose mean is 45 vs true 49.5.
        assert bias == pytest.approx(-4.5)

    def test_intraclass_correlation_near_zero_for_iid(self):
        population = np.random.default_rng(1).normal(5.0, 1.0, size=4000)
        delta = intraclass_correlation(population, interval=20)
        assert abs(delta) < 0.05

    def test_intraclass_correlation_positive_for_periodic(self):
        # Strong periodicity at the sampling interval -> high homogeneity.
        population = np.tile([1.0] * 10 + [10.0] * 10, 100)
        delta = intraclass_correlation(population, interval=20)
        assert delta > 0.2

    def test_intraclass_requires_enough_data(self):
        with pytest.raises(ValueError):
            intraclass_correlation([1.0, 2.0], interval=10)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestStatisticalSoundness:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_confidence_interval_covers_true_mean(self, seed):
        """Sampled means fall within the CI at least roughly as often as
        the confidence level promises (checked loosely per example)."""
        rng = np.random.default_rng(seed)
        population = rng.lognormal(mean=0.0, sigma=0.5, size=5000)
        true_mean = population.mean()
        sample = rng.choice(population, size=200, replace=False)
        stats = sample_statistics(sample)
        interval = stats.absolute_confidence_interval(0.997)
        # With 99.7% confidence the failure probability per example is
        # 0.3%; over 30 examples a failure is possible but very unlikely.
        assert abs(stats.mean - true_mean) <= interval * 1.5
